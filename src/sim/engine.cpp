#include "sim/engine.hpp"

namespace htpb::sim {

void Engine::step_one_cycle() {
  // Most cycles have no due events; skip the queue's pop/compare loop
  // entirely unless the earliest event is due now.
  if (events_.next_time() <= now_) events_.run_all_at(now_);
  for (Tickable* t : tickables_) t->tick(now_);
  ++now_;
}

void Engine::run_cycles(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step_one_cycle();
}

void Engine::run_until(Cycle when) {
  while (now_ <= when) step_one_cycle();
}

}  // namespace htpb::sim
