// Crash-isolated subprocess execution for the fleet scheduler (and any
// tool that shells a worker): fork/exec with output redirection, extra
// environment variables, and a wall-clock timeout enforced by SIGTERM
// with escalation to SIGKILL -- a worker that ignores SIGTERM (a hung
// simulation, an injected hang fault) still dies on schedule.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace htpb::common {

struct SubprocessOptions {
  /// Extra environment variables set in the child (on top of the
  /// inherited environment).
  std::vector<std::pair<std::string, std::string>> env;
  /// Redirect targets; empty = inherit the parent's stream.
  std::string stdout_path;
  std::string stderr_path;
  /// Wall-clock budget; 0 = unlimited. On expiry the child gets SIGTERM,
  /// then SIGKILL `term_grace_seconds` later if it is still alive.
  double timeout_seconds = 0.0;
  double term_grace_seconds = 2.0;
};

struct SubprocessResult {
  /// The wall-clock budget expired and the child was killed (regardless
  /// of whether SIGTERM sufficed or SIGKILL was needed).
  bool timed_out = false;
  /// The child died on a signal it did not ask for (crash); exclusive
  /// with a valid exit_code. Timeout kills are reported as timed_out,
  /// not signaled.
  bool signaled = false;
  int exit_code = -1;   ///< valid when !signaled && !timed_out
  int term_signal = 0;  ///< valid when signaled
  double seconds = 0.0;
};

/// Runs `argv` (argv[0] resolved via PATH) and waits for it to finish
/// under the options' timeout policy. Throws std::runtime_error when the
/// child cannot even be spawned (fork failure); an exec failure inside
/// the child surfaces as exit code 127.
[[nodiscard]] SubprocessResult run_subprocess(
    const std::vector<std::string>& argv, const SubprocessOptions& opts = {});

}  // namespace htpb::common
