#include "common/fault_inject.hpp"

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/rng.hpp"

namespace htpb::common {

namespace {

struct FaultSpec {
  double crash = 0.0;
  double hang = 0.0;
  double garbage = 0.0;
  std::uint64_t seed = 0;
};

[[noreturn]] void bad_spec(const char* text) {
  std::fprintf(stderr,
               "HTPB_FLEET_FAULT: cannot parse \"%s\" (expected "
               "crash:P,hang:P,garbage:P,seed:N)\n",
               text);
  std::exit(2);
}

FaultSpec parse_spec(const char* text) {
  FaultSpec spec;
  const char* p = text;
  while (*p != '\0') {
    const char* colon = std::strchr(p, ':');
    if (colon == nullptr) bad_spec(text);
    const std::string key(p, colon);
    char* end = nullptr;
    if (key == "seed") {
      spec.seed = std::strtoull(colon + 1, &end, 10);
    } else {
      const double v = std::strtod(colon + 1, &end);
      if (v < 0.0 || v > 1.0) bad_spec(text);
      if (key == "crash") {
        spec.crash = v;
      } else if (key == "hang") {
        spec.hang = v;
      } else if (key == "garbage") {
        spec.garbage = v;
      } else {
        bad_spec(text);
      }
    }
    if (end == colon + 1 || (*end != ',' && *end != '\0')) bad_spec(text);
    p = (*end == ',') ? end + 1 : end;
  }
  if (spec.crash + spec.hang + spec.garbage > 1.0) bad_spec(text);
  return spec;
}

[[nodiscard]] std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void maybe_inject_fleet_fault(const std::string& artifact_path) {
  const char* fault_env = std::getenv("HTPB_FLEET_FAULT");
  if (fault_env == nullptr || *fault_env == '\0') return;
  const FaultSpec spec = parse_spec(fault_env);

  const char* cell = std::getenv("HTPB_FLEET_CELL");
  const char* attempt_env = std::getenv("HTPB_FLEET_ATTEMPT");
  const std::uint64_t attempt =
      attempt_env != nullptr ? std::strtoull(attempt_env, nullptr, 10) : 1;

  // One uniform draw in [0, 1), pure in (seed, cell, attempt).
  const std::uint64_t h = splitmix64(
      splitmix64(spec.seed ^ fnv1a(cell != nullptr ? cell : "")) +
      attempt * 0x9E3779B97F4A7C15ULL);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;

  if (u < spec.crash) {
    std::fprintf(stderr, "HTPB_FLEET_FAULT: injected crash (cell %s attempt %llu)\n",
                 cell != nullptr ? cell : "-",
                 static_cast<unsigned long long>(attempt));
    std::abort();
  }
  if (u < spec.crash + spec.hang) {
    std::fprintf(stderr, "HTPB_FLEET_FAULT: injected hang (cell %s attempt %llu)\n",
                 cell != nullptr ? cell : "-",
                 static_cast<unsigned long long>(attempt));
    // Ignore SIGTERM so only the scheduler's SIGKILL escalation ends us:
    // the worst-case hung worker the timeout state machine exists for.
    ::signal(SIGTERM, SIG_IGN);
    for (;;) ::pause();
  }
  if (u < spec.crash + spec.hang + spec.garbage) {
    std::fprintf(stderr,
                 "HTPB_FLEET_FAULT: injected garbage output (cell %s attempt %llu)\n",
                 cell != nullptr ? cell : "-",
                 static_cast<unsigned long long>(attempt));
    if (!artifact_path.empty() && artifact_path != "-") {
      // Deliberately bypasses atomic_write_file: this models a worker
      // whose emitter is broken, leaving a truncated non-JSON artifact.
      std::FILE* f = std::fopen(artifact_path.c_str(), "wb");
      if (f != nullptr) {
        std::fputs("{\"scenario\": \"truncat", f);
        std::fclose(f);
      }
    }
    std::exit(0);
  }
}

}  // namespace htpb::common
