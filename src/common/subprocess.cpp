#include "common/subprocess.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace htpb::common {

namespace {

using clock_type = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(clock_type::time_point t0) {
  // htpb-lint: allow(nondet-call) wall-clock deadline for child-process timeout, never feeds results
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Child-side stream redirection; _exit(127) on failure (the parent sees
/// the same code an exec failure produces -- both mean "never ran").
void redirect_or_die(const std::string& path, int target_fd) {
  if (path.empty()) return;
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0 || ::dup2(fd, target_fd) < 0) _exit(127);
  ::close(fd);
}

}  // namespace

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const SubprocessOptions& opts) {
  if (argv.empty()) {
    throw std::runtime_error("run_subprocess: empty argv");
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  // htpb-lint: allow(nondet-call) timeout reference point for the child process, never feeds results
  const auto t0 = clock_type::now();
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("run_subprocess: fork failed");
  }
  if (pid == 0) {
    // Child. setenv/open are not async-signal-safe in theory; in
    // practice every scheduler-shaped tool does exactly this between
    // fork and exec, and the parent is single-purpose at this point.
    for (const auto& [key, value] : opts.env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    redirect_or_die(opts.stdout_path, STDOUT_FILENO);
    redirect_or_die(opts.stderr_path, STDERR_FILENO);
    ::execvp(cargv[0], cargv.data());
    std::fprintf(stderr, "run_subprocess: exec %s failed: %s\n", cargv[0],
                 std::strerror(errno));
    _exit(127);
  }

  // Parent: poll with WNOHANG so the timeout clock keeps running, then
  // escalate SIGTERM -> SIGKILL. After SIGKILL the final wait is
  // unconditional -- SIGKILL cannot be ignored, so it terminates.
  SubprocessResult result;
  bool sent_term = false;
  bool sent_kill = false;
  double kill_deadline = 0.0;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) {
      throw std::runtime_error("run_subprocess: waitpid failed");
    }
    const double elapsed = seconds_since(t0);
    if (opts.timeout_seconds > 0.0 && !sent_term &&
        elapsed >= opts.timeout_seconds) {
      ::kill(pid, SIGTERM);
      sent_term = true;
      result.timed_out = true;
      kill_deadline = elapsed + opts.term_grace_seconds;
    } else if (sent_term && !sent_kill && elapsed >= kill_deadline) {
      ::kill(pid, SIGKILL);
      sent_kill = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  result.seconds = seconds_since(t0);
  if (WIFEXITED(status)) {
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.term_signal = WTERMSIG(status);
    // A signal we sent is a timeout, not a crash of the child's making.
    result.signaled = !result.timed_out;
  }
  return result;
}

}  // namespace htpb::common
