#include "common/log.hpp"

#include <cstdarg>
#include <vector>

namespace htpb {

namespace {
LogLevel g_threshold = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() noexcept { return g_threshold; }
void set_log_threshold(LogLevel level) noexcept { g_threshold = level; }

namespace detail {

void log_line(LogLevel level, const char* module, const std::string& msg) {
  std::fprintf(stderr, "[%s] %-8s %s\n", level_name(level), module, msg.c_str());
}

std::string format_args(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace htpb
