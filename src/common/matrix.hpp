// Small dense linear algebra: just enough to fit the paper's linear
// attack-effect model (Eq. 9) by least squares and report R^2.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace htpb {

/// Row-major dense matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] std::vector<double> operator*(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b for symmetric positive definite A via Cholesky.
/// Throws std::runtime_error if A is not SPD (within a tolerance).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& a,
                                                 std::span<const double> b);

/// Ordinary least squares: minimizes ||X beta - y||^2 using the normal
/// equations with a small ridge term for numerical safety.
/// X is n x p with n >= p.
[[nodiscard]] std::vector<double> least_squares(const Matrix& x,
                                                std::span<const double> y,
                                                double ridge = 1e-9);

/// Coefficient of determination of predictions vs. observations.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> observed);

}  // namespace htpb
