#include "common/geometry.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace htpb {

MeshGeometry::MeshGeometry(int width, int height)
    : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("MeshGeometry: dimensions must be positive");
  }
}

std::vector<NodeId> MeshGeometry::nodes_by_distance(Coord from) const {
  std::vector<NodeId> ids(static_cast<std::size_t>(node_count()));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<NodeId>(i);
  }
  std::stable_sort(ids.begin(), ids.end(), [&](NodeId a, NodeId b) {
    const int da = manhattan_distance(coord_of(a), from);
    const int db = manhattan_distance(coord_of(b), from);
    if (da != db) return da < db;
    return a < b;
  });
  return ids;
}

PointF virtual_center(std::span<const Coord> nodes) {
  if (nodes.empty()) {
    throw std::invalid_argument("virtual_center: empty node set");
  }
  double sx = 0.0;
  double sy = 0.0;
  for (const Coord& c : nodes) {
    sx += c.x;
    sy += c.y;
  }
  const double m = static_cast<double>(nodes.size());
  return PointF{sx / m, sy / m};
}

double center_distance(Coord global_manager, std::span<const Coord> nodes) {
  const PointF omega = virtual_center(nodes);
  return manhattan_distance(omega, global_manager);
}

double placement_density(std::span<const Coord> nodes) {
  const PointF omega = virtual_center(nodes);
  double sum = 0.0;
  for (const Coord& c : nodes) {
    sum += manhattan_distance(omega, c);
  }
  return sum / static_cast<double>(nodes.size());
}

}  // namespace htpb
