// Tiny leveled logger. Off by default; experiments turn on per-module
// logging when debugging. Not thread-safe by design: the simulator is
// single-threaded and deterministic.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace htpb {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global log threshold; messages above it are discarded.
LogLevel log_threshold() noexcept;
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, const char* module, const std::string& msg);
std::string format_args(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

template <typename... Args>
void log_message(LogLevel level, const char* module, const char* fmt,
                 Args&&... args) {
  if (static_cast<int>(level) > static_cast<int>(log_threshold())) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::log_line(level, module, fmt);
  } else {
    detail::log_line(level, module,
                     detail::format_args(fmt, std::forward<Args>(args)...));
  }
}

#define HTPB_LOG_ERROR(mod, ...) \
  ::htpb::log_message(::htpb::LogLevel::kError, mod, __VA_ARGS__)
#define HTPB_LOG_WARN(mod, ...) \
  ::htpb::log_message(::htpb::LogLevel::kWarn, mod, __VA_ARGS__)
#define HTPB_LOG_INFO(mod, ...) \
  ::htpb::log_message(::htpb::LogLevel::kInfo, mod, __VA_ARGS__)
#define HTPB_LOG_DEBUG(mod, ...) \
  ::htpb::log_message(::htpb::LogLevel::kDebug, mod, __VA_ARGS__)

}  // namespace htpb
