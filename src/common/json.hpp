// Minimal JSON value type, parser and serializer -- the one place the
// repo formats or reads JSON. ScenarioSpec (de)serialization, the
// htpb_run result artifacts and the bench JSON emitters all go through
// here instead of hand-rolling escaping and number formatting.
//
// Contracts the scenario layer leans on:
//  - Objects preserve insertion order, so dumping is deterministic and a
//    parse -> dump -> parse round trip is exact.
//  - Numbers keep their parsed flavour: an integer token becomes kInt
//    (exact int64), everything else kDouble. Doubles are emitted with the
//    shortest decimal form that parses back bit-identically, and an
//    integral double keeps a ".0" marker so its type survives the trip.
//  - NaN and infinities have no JSON spelling; dump() emits `null` for
//    them (tests/common/json_test.cpp locks this).
//  - parse() is strict: full input consumed, no comments, no trailing
//    commas; errors carry the byte offset.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace htpb::json {

class Value;

using Array = std::vector<Value>;

/// Insertion-ordered string -> Value map. Linear lookup: spec and result
/// objects hold tens of keys, and deterministic order matters more than
/// O(1) access.
class Object {
 public:
  using Member = std::pair<std::string, Value>;

  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;
  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  /// Fetches or inserts (at the end) the member named `key`.
  Value& operator[](std::string_view key);

  [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
  [[nodiscard]] bool empty() const noexcept { return members_.empty(); }
  [[nodiscard]] auto begin() const noexcept { return members_.begin(); }
  [[nodiscard]] auto end() const noexcept { return members_.end(); }
  [[nodiscard]] auto begin() noexcept { return members_.begin(); }
  [[nodiscard]] auto end() noexcept { return members_.end(); }

  friend bool operator==(const Object&, const Object&);

 private:
  std::vector<Member> members_;
};

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() noexcept : type_(Type::kNull) {}
  Value(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Value(bool b) noexcept : type_(Type::kBool), bool_(b) {}
  Value(int i) noexcept : type_(Type::kInt), int_(i) {}
  Value(long i) noexcept : type_(Type::kInt), int_(i) {}
  Value(long long i) noexcept : type_(Type::kInt), int_(i) {}
  Value(unsigned u) noexcept : type_(Type::kInt), int_(u) {}
  Value(double d) noexcept : type_(Type::kDouble), double_(d) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}
  Value(std::string_view s) : type_(Type::kString), string_(s) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), array_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type_ == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept {
    return type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return is_int() || is_double();
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Checked accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Accepts kInt (converted) and kDouble.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Object& as_object();

  friend bool operator==(const Value&, const Value&);

 private:
  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping of `s` -- quotes, backslashes and control
/// characters (as \uXXXX) -- WITHOUT the surrounding quotes.
[[nodiscard]] std::string escape(std::string_view s);

/// `escape` plus the surrounding quotes: ready to splice into output.
[[nodiscard]] std::string quote(std::string_view s);

/// Shortest decimal representation that strtod's back to the same bits.
/// Integral finite values keep a ".0" so the token stays a double on
/// re-parse; NaN/Inf become "null" (JSON has no spelling for them).
[[nodiscard]] std::string format_double(double d);

/// Serializes with `indent` spaces per nesting level; `indent` == 0 packs
/// everything onto one line. Deterministic: object members appear in
/// insertion order.
[[nodiscard]] std::string dump(const Value& v, int indent = 2);

/// Strict parse of the complete input. Throws std::runtime_error with the
/// byte offset on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

/// `parse` over a file's contents; error messages carry the path.
[[nodiscard]] Value parse_file(const std::string& path);

/// Writes `dump(v, indent)` plus a trailing newline to `path`; throws
/// std::runtime_error when the file cannot be written.
void dump_file(const Value& v, const std::string& path, int indent = 2);

/// Strict-consumption view over an Object: every key must be read exactly
/// through this reader, and finish() rejects whatever was not consumed --
/// the unknown-key firewall of the spec schema. `path` prefixes error
/// messages ("scenario.system: unknown key ...").
class ObjectReader {
 public:
  ObjectReader(const Object& object, std::string path);

  /// Null when absent; marks the key consumed when present.
  [[nodiscard]] const Value* optional(std::string_view key);
  /// Throws when absent.
  [[nodiscard]] const Value& require(std::string_view key);

  [[nodiscard]] bool get_bool(std::string_view key, bool fallback);
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(std::string_view key, double fallback);
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string fallback);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Throws std::runtime_error naming every key never consumed.
  void finish() const;

  /// Error with this reader's path prefixed (for custom member parsing).
  [[noreturn]] void fail(const std::string& message) const;

 private:
  const Object& object_;
  std::string path_;
  std::vector<bool> consumed_;
};

}  // namespace htpb::json
