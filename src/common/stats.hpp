// Streaming statistics helpers used by NoC latency tracking, campaign
// result aggregation and the regression diagnostics.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace htpb {

/// Welford running mean/variance with min/max, O(1) per sample.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Raw accumulator dump/restore, for checkpointing. The raw fields (not
  /// the derived accessors) round-trip so a restored stat continues the
  /// Welford recurrence bit-identically.
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Raw raw() const noexcept { return {n_, mean_, m2_, min_, max_}; }
  void set_raw(const Raw& r) noexcept {
    n_ = r.n;
    mean_ = r.mean;
    m2_ = r.m2;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  /// Value below which the given fraction of samples fall (bucket-resolution).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] std::string to_string() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;
[[nodiscard]] double stddev_of(std::span<const double> xs) noexcept;

/// Pearson correlation of two equally sized series (0 if degenerate).
[[nodiscard]] double correlation(std::span<const double> xs,
                                 std::span<const double> ys) noexcept;

}  // namespace htpb
