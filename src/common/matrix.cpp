#include "common/matrix.hpp"

#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace htpb {

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += a * rhs(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix-vector multiply: dimension mismatch");
  }
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) {
    throw std::invalid_argument("cholesky_solve: dimension mismatch");
  }
  // Decompose A = L L^T.
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0) {
      throw std::runtime_error("cholesky_solve: matrix not positive definite");
    }
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  // Forward solve L z = b.
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * z[k];
    z[i] = s / l(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = z[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

std::vector<double> least_squares(const Matrix& x, std::span<const double> y,
                                  double ridge) {
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  if (y.size() != n) {
    throw std::invalid_argument("least_squares: row count mismatch");
  }
  if (n < p) {
    throw std::invalid_argument("least_squares: underdetermined system");
  }
  // Normal equations: (X^T X + ridge I) beta = X^T y.
  Matrix xtx(p, p);
  std::vector<double> xty(p, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t a = 0; a < p; ++a) {
      const double xa = x(i, a);
      if (xa == 0.0) continue;
      xty[a] += xa * y[i];
      for (std::size_t b = a; b < p; ++b) {
        xtx(a, b) += xa * x(i, b);
      }
    }
  }
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = 0; b < a; ++b) xtx(a, b) = xtx(b, a);
    xtx(a, a) += ridge;
  }
  return cholesky_solve(xtx, xty);
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> observed) {
  if (predicted.size() != observed.size() || observed.empty()) {
    throw std::invalid_argument("r_squared: size mismatch or empty");
  }
  const double mean = mean_of(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double e = observed[i] - predicted[i];
    const double d = observed[i] - mean;
    ss_res += e * e;
    ss_tot += d * d;
  }
  if (ss_tot <= 0.0) return ss_res <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace htpb
