// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// Every stochastic decision in the simulator draws from an explicitly
// seeded Rng so experiments are exactly reproducible; there is no use of
// std::random_device or global generators anywhere in the code base.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace htpb {

/// SplitMix64 finalizer (Steele, Lea & Flood). Bijective 64-bit mixing:
/// used to expand seeds into generator state and to derive independent
/// per-index streams (ParallelSweepRunner::stream_rng).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      word = splitmix64(x);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish inter-arrival sample for a Poisson process with the
  /// given rate per cycle. Returns at least 1.
  [[nodiscard]] std::uint64_t exponential_gap(double rate_per_cycle) noexcept;

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct values from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::uint32_t> sample_without_replacement(
      std::uint32_t n, std::uint32_t k);

  /// Derive an independent child stream (for per-node generators).
  // htpb-lint: allow(seed-provenance) child stream derives from the parent's already-seeded stream
  [[nodiscard]] Rng fork() noexcept { return Rng((*this)()); }

  /// Raw generator state, for checkpointing. A restored stream continues
  /// exactly where the saved one left off.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace htpb
