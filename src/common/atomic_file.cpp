#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace htpb::common {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path,
                       int err) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(err));
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents) {
  // The temp file lives beside the target so the final rename stays on
  // one filesystem (rename across devices is a copy, not atomic). The
  // pid suffix keeps concurrent writers -- fleet shards racing on
  // distinct attempts of the same cell -- from trampling each other's
  // temp files; whichever renames last wins wholesale.
  const std::string temp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) fail("atomic_write_file: cannot create", temp, errno);

  std::size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(temp.c_str());
      fail("atomic_write_file: write failed for", temp, err);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash can leave the *rename*
  // durable but the data not, which is exactly the truncated-artifact
  // failure this function exists to rule out.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(temp.c_str());
    fail("atomic_write_file: fsync failed for", temp, err);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    fail("atomic_write_file: close failed for", temp, err);
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(temp.c_str());
    fail("atomic_write_file: cannot rename into", path, err);
  }
}

std::string read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("read_file: cannot open", path, errno);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      fail("read_file: read failed for", path, err);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

}  // namespace htpb::common
