#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace htpb {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  if (!(hi > lo) || buckets == 0) {
    throw std::invalid_argument("Histogram: bad range or bucket count");
  }
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge guard
  ++counts_[idx];
}

double Histogram::percentile(double p) const {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(p * static_cast<double>(total_));
  std::uint64_t seen = underflow_;
  if (seen >= target) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) return lo_ + width_ * static_cast<double>(i + 1);
  }
  return hi_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "hist[" << lo_ << "," << hi_ << ") total=" << total_
     << " under=" << underflow_ << " over=" << overflow_ << " |";
  for (const auto c : counts_) os << ' ' << c;
  return os.str();
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double correlation(std::span<const double> xs,
                   std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace htpb
