// Runtime-sized bitset used for L2 directory sharer sets (up to 512 cores).
#pragma once

#include <cstdint>
#include <vector>

namespace htpb {

/// Minimal dynamic bitset with popcount and iteration over set bits.
class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void clear(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t c = 0;
    for (const auto w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const auto w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Indices of all set bits in ascending order.
  [[nodiscard]] std::vector<std::uint32_t> set_bits() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int b = __builtin_ctzll(w);
        out.push_back(static_cast<std::uint32_t>(wi * 64 + static_cast<std::size_t>(b)));
        w &= w - 1;
      }
    }
    return out;
  }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace htpb
