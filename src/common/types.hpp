// Fundamental identifier and time types shared by every module.
#pragma once

#include <cstdint>
#include <limits>

namespace htpb {

/// Simulation time in NoC cycles (1 cycle == 1 ns at the 1 GHz reference
/// clock used throughout the simulator; see DESIGN.md §5).
using Cycle = std::uint64_t;

/// Identifier of a node (tile) in the mesh. Node ids are row-major:
/// id = y * width + x.
using NodeId = std::uint32_t;

/// Identifier of an application (one multi-threaded benchmark instance).
using AppId = std::uint32_t;

/// Identifier of a packet, unique within one network's lifetime.
using PacketId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr AppId kInvalidApp = std::numeric_limits<AppId>::max();
inline constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

}  // namespace htpb
