#include "common/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/atomic_file.hpp"

namespace htpb::json {

namespace {

[[noreturn]] void type_error(const char* wanted, Value::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "int",
                                           "double", "string", "array",
                                           "object"};
  throw std::runtime_error(std::string("json: expected ") + wanted +
                           ", got " + kNames[static_cast<int>(got)]);
}

}  // namespace

// ---------------------------------------------------------------- Object

const Value* Object::find(std::string_view key) const noexcept {
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
  for (Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Value& Object::operator[](std::string_view key) {
  if (Value* v = find(key)) return *v;
  members_.emplace_back(std::string(key), Value());
  return members_.back().second;
}

bool operator==(const Object& a, const Object& b) {
  return a.members_ == b.members_;
}

// ----------------------------------------------------------------- Value

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Value::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

double Value::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("number", type_);
  return double_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Array& Value::as_array() {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

Object& Value::as_object() {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::kNull: return true;
    case Value::Type::kBool: return a.bool_ == b.bool_;
    case Value::Type::kInt: return a.int_ == b.int_;
    case Value::Type::kDouble:
      // Bit-exact round trips are the contract; NaN == NaN here so a
      // value containing NaN still compares equal to itself.
      return (a.double_ == b.double_) ||
             (std::isnan(a.double_) && std::isnan(b.double_));
    case Value::Type::kString: return a.string_ == b.string_;
    case Value::Type::kArray: return a.array_ == b.array_;
    case Value::Type::kObject: return a.object_ == b.object_;
  }
  return false;
}

// ------------------------------------------------------------ formatting

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += escape(s);
  out += '"';
  return out;
}

std::string format_double(double d) {
  if (!std::isfinite(d)) return "null";
  char buf[40];
  // Shortest precision that survives a round trip; 17 always does.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  std::string out = buf;
  // Keep the token a double on re-parse ("3" would come back as kInt).
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

namespace {

void dump_to(const Value& v, int indent, int depth, std::string& out) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Type::kInt: out += std::to_string(v.as_int()); break;
    case Value::Type::kDouble: out += format_double(v.as_double()); break;
    case Value::Type::kString: out += quote(v.as_string()); break;
    case Value::Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        dump_to(a[i], indent, depth + 1, out);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, member] : o) {
        if (!first) out += indent > 0 ? "," : ", ";
        first = false;
        newline(depth + 1);
        out += quote(key);
        out += ": ";
        dump_to(member, indent, depth + 1, out);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v, int indent) {
  std::string out;
  dump_to(v, indent, 0, out);
  return out;
}

// --------------------------------------------------------------- parsing

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 200;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  /// RFC 8259: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  [[nodiscard]] static bool is_json_number(const std::string& t) noexcept {
    std::size_t i = 0;
    if (i < t.size() && t[i] == '-') ++i;
    if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
    if (t[i] == '0') {
      ++i;  // no leading zeros
    } else {
      while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
    }
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
      while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
      while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
    }
    return i == t.size();
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("unexpected end of input");
    Value result;
    switch (peek()) {
      case '{': result = object(); break;
      case '[': result = array(); break;
      case '"': result = Value(string()); break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        result = Value(true);
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        result = Value(false);
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        result = Value(nullptr);
        break;
      default: result = number(); break;
    }
    --depth_;
    return result;
  }

  Value object() {
    expect('{');
    Object o;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value(std::move(o));
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      if (o.contains(key)) fail("duplicate key \"" + key + "\"");
      o[key] = value();
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(o));
    }
  }

  Value array() {
    expect('[');
    Array a;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value(std::move(a));
    }
    for (;;) {
      a.push_back(value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(a));
    }
  }

  std::string string() {
    if (eof() || peek() != '"') fail("expected string");
    ++pos_;
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += unicode_escape(); break;
        default: fail("invalid escape");
      }
    }
  }

  std::string unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    // UTF-8 encode the code point (surrogate pairs are passed through as
    // two separate 3-byte sequences; the specs never use them).
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    bool integral = true;
    while (!eof()) {
      const char c = peek();
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    // Strictness promise of json.hpp: only RFC 8259 number grammar, so a
    // leading '+', a bare or trailing '.', leading zeros and other
    // strtod-isms are rejected here rather than silently accepted.
    if (!is_json_number(token)) fail("invalid number");
    errno = 0;
    if (integral) {
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

Value parse_file(const std::string& path) {
  // read_file names the path and the errno string on open/read failure;
  // parse errors get the path prefixed onto their byte-offset message.
  // Either way a bad file is diagnosed by name, never as a bare error.
  const std::string text = common::read_file(path);
  try {
    return parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void dump_file(const Value& v, const std::string& path, int indent) {
  // Atomic (temp + fsync + rename): a tool killed mid-dump never leaves
  // a truncated JSON artifact behind for a merger to choke on.
  common::atomic_write_file(path, dump(v, indent) + "\n");
}

// ---------------------------------------------------------- ObjectReader

ObjectReader::ObjectReader(const Object& object, std::string path)
    : object_(object), path_(std::move(path)),
      consumed_(object.size(), false) {}

const Value* ObjectReader::optional(std::string_view key) {
  std::size_t i = 0;
  for (const auto& [name, value] : object_) {
    if (name == key) {
      consumed_[i] = true;
      return &value;
    }
    ++i;
  }
  return nullptr;
}

const Value& ObjectReader::require(std::string_view key) {
  const Value* v = optional(key);
  if (v == nullptr) fail("missing required key \"" + std::string(key) + "\"");
  return *v;
}

bool ObjectReader::get_bool(std::string_view key, bool fallback) {
  const Value* v = optional(key);
  return v == nullptr ? fallback : v->as_bool();
}

std::int64_t ObjectReader::get_int(std::string_view key,
                                   std::int64_t fallback) {
  const Value* v = optional(key);
  return v == nullptr ? fallback : v->as_int();
}

double ObjectReader::get_double(std::string_view key, double fallback) {
  const Value* v = optional(key);
  return v == nullptr ? fallback : v->as_double();
}

std::string ObjectReader::get_string(std::string_view key,
                                     std::string fallback) {
  const Value* v = optional(key);
  return v == nullptr ? std::move(fallback) : v->as_string();
}

void ObjectReader::finish() const {
  std::string unknown;
  std::size_t i = 0;
  for (const auto& [name, value] : object_) {
    if (!consumed_[i]) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "\"" + name + "\"";
    }
    ++i;
  }
  if (!unknown.empty()) fail("unknown key(s): " + unknown);
}

void ObjectReader::fail(const std::string& message) const {
  throw std::runtime_error(path_ + ": " + message);
}

}  // namespace htpb::json
