// 2D mesh geometry: coordinates, node-id mapping, Manhattan distance and
// the "virtual center" used by the paper's Definitions 6-8.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace htpb {

/// Integer coordinate of a tile in the 2D mesh. x grows east, y grows south.
struct Coord {
  int x = 0;
  int y = 0;

  friend constexpr bool operator==(const Coord&, const Coord&) = default;
};

/// Real-valued point; result of averaging integer coordinates (Def. 6).
struct PointF {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const PointF&, const PointF&) = default;
};

/// Manhattan distance between two tile coordinates.
[[nodiscard]] constexpr int manhattan_distance(Coord a, Coord b) noexcept {
  const int dx = a.x >= b.x ? a.x - b.x : b.x - a.x;
  const int dy = a.y >= b.y ? a.y - b.y : b.y - a.y;
  return dx + dy;
}

/// Manhattan distance between real-valued points (used for distances that
/// involve the virtual center, Defs. 7-8).
[[nodiscard]] inline double manhattan_distance(PointF a, PointF b) noexcept {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

[[nodiscard]] inline double manhattan_distance(PointF a, Coord b) noexcept {
  return manhattan_distance(a, PointF{static_cast<double>(b.x),
                                      static_cast<double>(b.y)});
}

/// Maps between row-major node ids and coordinates for a mesh of the given
/// width/height. Kept as a tiny value type so that every module agrees on
/// the mapping.
class MeshGeometry {
 public:
  MeshGeometry() = default;
  MeshGeometry(int width, int height);

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int node_count() const noexcept { return width_ * height_; }

  [[nodiscard]] Coord coord_of(NodeId id) const noexcept {
    return Coord{static_cast<int>(id) % width_, static_cast<int>(id) / width_};
  }

  [[nodiscard]] NodeId id_of(Coord c) const noexcept {
    return static_cast<NodeId>(c.y * width_ + c.x);
  }

  [[nodiscard]] bool contains(Coord c) const noexcept {
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
  }

  [[nodiscard]] bool contains(NodeId id) const noexcept {
    return id < static_cast<NodeId>(node_count());
  }

  /// Distance in hops between two nodes (minimal routing).
  [[nodiscard]] int hop_distance(NodeId a, NodeId b) const noexcept {
    return manhattan_distance(coord_of(a), coord_of(b));
  }

  /// The tile closest to the geometric center of the chip.
  [[nodiscard]] Coord center() const noexcept {
    return Coord{width_ / 2, height_ / 2};
  }

  /// Corner (0, 0); the paper's "global manager in one corner" experiments.
  [[nodiscard]] static constexpr Coord corner() noexcept { return Coord{0, 0}; }

  /// All node ids ordered by Manhattan distance from `from` (stable order
  /// for determinism: ties broken by node id).
  [[nodiscard]] std::vector<NodeId> nodes_by_distance(Coord from) const;

 private:
  int width_ = 1;
  int height_ = 1;
};

/// Def. 6: the virtual center of a set of (malicious) node coordinates.
[[nodiscard]] PointF virtual_center(std::span<const Coord> nodes);

/// Def. 7: Manhattan distance between a location and the virtual center.
[[nodiscard]] double center_distance(Coord global_manager,
                                     std::span<const Coord> nodes);

/// Def. 8: average Manhattan distance of the nodes from their own virtual
/// center ("density" in the paper; really a dispersion measure).
[[nodiscard]] double placement_density(std::span<const Coord> nodes);

}  // namespace htpb
