#include "common/rng.hpp"

#include <cmath>
#include <numeric>

namespace htpb {

std::uint64_t Rng::exponential_gap(double rate_per_cycle) noexcept {
  if (rate_per_cycle <= 0.0) return ~0ULL;
  // Inverse-CDF sample; clamp u away from 0 to keep log finite.
  const double u = std::max(uniform(), 1e-12);
  const double gap = -std::log(u) / rate_per_cycle;
  if (gap < 1.0) return 1;
  if (gap > 1e18) return ~0ULL;
  return static_cast<std::uint64_t>(gap);
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  std::vector<std::uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0U);
  if (k > n) k = n;
  // Partial Fisher-Yates: first k positions become the sample.
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<std::uint32_t>(below(static_cast<std::uint64_t>(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace htpb
