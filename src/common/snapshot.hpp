// Shared helpers for the checkpointing layer (ARCHITECTURE.md §11).
//
// Snapshots are JSON trees built with common/json. Two conventions keep a
// save -> dump -> parse -> load round trip bit-identical:
//  - doubles ride on json's shortest-round-trip formatting (exact);
//  - 64-bit integers are stored as decimal strings, because a JSON number
//    read back through double parsing would lose bits above 2^53 (Rng
//    state words and packet tags use the full width).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "common/stats.hpp"

namespace htpb::common {

/// A 64-bit unsigned value as a JSON decimal string (lossless).
[[nodiscard]] inline json::Value ju64(std::uint64_t v) {
  return json::Value(std::to_string(v));
}

/// Inverse of ju64. Throws std::runtime_error on a malformed field.
[[nodiscard]] inline std::uint64_t pu64(const json::Value& v) {
  const std::string& s = v.as_string();
  std::size_t used = 0;
  const std::uint64_t out = std::stoull(s, &used);
  if (used != s.size()) {
    throw std::runtime_error("snapshot: malformed u64 field: " + s);
  }
  return out;
}

[[nodiscard]] inline json::Value stat_to_json(const RunningStat& s) {
  const RunningStat::Raw r = s.raw();
  json::Object o;
  o["n"] = ju64(r.n);
  o["mean"] = json::Value(r.mean);
  o["m2"] = json::Value(r.m2);
  o["min"] = json::Value(r.min);
  o["max"] = json::Value(r.max);
  return json::Value(std::move(o));
}

inline void stat_from_json(RunningStat& s, const json::Value& v) {
  const json::Object& o = v.as_object();
  RunningStat::Raw r;
  r.n = pu64(*o.find("n"));
  r.mean = o.find("mean")->as_double();
  r.m2 = o.find("m2")->as_double();
  r.min = o.find("min")->as_double();
  r.max = o.find("max")->as_double();
  s.set_raw(r);
}

}  // namespace htpb::common
