// Crash-safe file emission. Every artifact a tool can be killed while
// writing (scenario result JSON, bench baselines, fleet statuses) goes
// through atomic_write_file: a reader -- or a scheduler restarted after a
// kill -9 -- sees either the previous contents or the complete new ones,
// never a truncated hybrid.
#pragma once

#include <string>
#include <string_view>

namespace htpb::common {

/// Writes `contents` to `path` atomically: a temp file beside the target
/// (same directory, so the rename cannot cross filesystems), fsync, then
/// rename(2) over `path`. Throws std::runtime_error naming the path and
/// the errno string on any failure; the temp file is unlinked on error.
void atomic_write_file(const std::string& path, std::string_view contents);

/// Reads a whole file into a string. Throws std::runtime_error naming the
/// path and the errno string when the file cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace htpb::common
