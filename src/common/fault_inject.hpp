// Deterministic fault injection for the fleet-worker path. When the
// environment carries
//
//   HTPB_FLEET_FAULT=crash:P,hang:P,garbage:P,seed:N
//
// a worker draws one uniform variate from (seed, HTPB_FLEET_CELL,
// HTPB_FLEET_ATTEMPT) -- the latter two are set per attempt by
// core::FleetScheduler -- and, by the stacked probabilities, either
// aborts (crash), ignores SIGTERM and hangs forever (hang: schedulers
// must escalate to SIGKILL), or writes a truncated non-JSON artifact and
// exits 0 (garbage). Everything is a pure function of the four inputs,
// so a faulted fleet run is reproducible bit for bit: the same cells
// fail on the same attempts every time.
#pragma once

#include <string>

namespace htpb::common {

/// No-op unless HTPB_FLEET_FAULT is set. `artifact_path` is the output
/// file a garbage fault corrupts (empty or "-" = the fault just exits 0
/// without writing, which readers must treat as a missing artifact). A
/// malformed HTPB_FLEET_FAULT spec prints a diagnostic and exits 2: a
/// typo'd harness must never silently run fault-free.
void maybe_inject_fleet_fault(const std::string& artifact_path);

}  // namespace htpb::common
