#include "scenario/spec.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "workload/application.hpp"

namespace htpb::scenario {

// ----------------------------------------------------- enum string maps

const char* to_string(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kInfectionVsHtCount: return "infection_vs_ht_count";
    case ScenarioKind::kInfectionVsDistribution:
      return "infection_vs_distribution";
    case ScenarioKind::kAttackEffect: return "attack_effect";
    case ScenarioKind::kPerformanceChange: return "performance_change";
    case ScenarioKind::kPlacementStudy: return "placement_study";
    case ScenarioKind::kDefenseSweep: return "defense_sweep";
    case ScenarioKind::kDefenseEvaluation: return "defense_evaluation";
    case ScenarioKind::kAttackComparison: return "attack_comparison";
    case ScenarioKind::kBudgeterAblation: return "budgeter_ablation";
    case ScenarioKind::kConfigReport: return "config_report";
    case ScenarioKind::kBenchmarkReport: return "benchmark_report";
    case ScenarioKind::kAreaPowerReport: return "area_power_report";
    case ScenarioKind::kDefenseClosedLoop: return "defense_closed_loop";
  }
  return "?";
}

ScenarioKind scenario_kind_from_string(std::string_view name) {
  for (int i = 0; i < kScenarioKindCount; ++i) {
    const auto kind = static_cast<ScenarioKind>(i);
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown scenario kind \"" + std::string(name) +
                              "\"");
}

const char* to_string(system::GmPlacement placement) noexcept {
  switch (placement) {
    case system::GmPlacement::kCenter: return "center";
    case system::GmPlacement::kCorner: return "corner";
  }
  return "?";
}

system::GmPlacement gm_placement_from_string(std::string_view name) {
  if (name == "center") return system::GmPlacement::kCenter;
  if (name == "corner") return system::GmPlacement::kCorner;
  throw std::invalid_argument("unknown gm placement \"" + std::string(name) +
                              "\" (center|corner)");
}

power::BudgeterKind budgeter_kind_from_string(std::string_view name) {
  // Names match power::to_string (and Budgeter::name()).
  static constexpr power::BudgeterKind kKinds[] = {
      power::BudgeterKind::kUniform, power::BudgeterKind::kGreedy,
      power::BudgeterKind::kProportional,
      power::BudgeterKind::kDynamicProgramming, power::BudgeterKind::kMarket};
  for (const auto kind : kKinds) {
    if (name == power::to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown budgeter \"" + std::string(name) +
                              "\" (uniform|greedy|proportional|dp|market)");
}

const char* to_string(power::DetectorKind kind) noexcept {
  switch (kind) {
    case power::DetectorKind::kSelfEwma: return "ewma";
    case power::DetectorKind::kCohortMedian: return "cohort";
  }
  return "?";
}

power::DetectorKind detector_kind_from_string(std::string_view name) {
  if (name == "ewma") return power::DetectorKind::kSelfEwma;
  if (name == "cohort") return power::DetectorKind::kCohortMedian;
  throw std::invalid_argument("unknown detector kind \"" + std::string(name) +
                              "\" (ewma|cohort)");
}

const char* to_string(ClusterSpec::At at) noexcept {
  switch (at) {
    case ClusterSpec::At::kGm: return "gm";
    case ClusterSpec::At::kCenter: return "center";
    case ClusterSpec::At::kCorner: return "corner";
    case ClusterSpec::At::kQuarter: return "quarter";
  }
  return "?";
}

ClusterSpec::At cluster_at_from_string(std::string_view name) {
  for (int i = 0; i < ClusterSpec::kAtCount; ++i) {
    const auto at = static_cast<ClusterSpec::At>(i);
    if (name == to_string(at)) return at;
  }
  throw std::invalid_argument("unknown cluster anchor \"" +
                              std::string(name) +
                              "\" (gm|center|corner|quarter)");
}

std::pair<int, int> mesh_for_size(int nodes) {
  switch (nodes) {
    case 64: return {8, 8};
    case 128: return {16, 8};
    case 256: return {16, 16};
    case 512: return {32, 16};
    default:
      throw std::invalid_argument(
          "no paper mesh shape for " + std::to_string(nodes) +
          " nodes (64/128/256/512)");
  }
}

// -------------------------------------------------------- config bridges

system::SystemConfig SystemSpec::to_system_config() const {
  system::SystemConfig cfg = system::SystemConfig::with_mesh(width, height);
  cfg.epoch_cycles = epoch_cycles;
  cfg.first_epoch_cycle = first_epoch_cycle;
  cfg.budget_fraction = budget_fraction;
  cfg.budgeter = budgeter;
  cfg.guard_requests = guard_requests;
  cfg.gm_placement = gm_placement;
  cfg.gm_node = gm_node;
  cfg.seed = seed;
  return cfg;
}

power::DetectorConfig DetectorSpec::to_config() const {
  power::DetectorConfig cfg;
  cfg.kind = kind;
  cfg.history_alpha = history_alpha;
  cfg.low_ratio = low_ratio;
  cfg.high_ratio = high_ratio;
  cfg.warmup_epochs = warmup_epochs;
  cfg.confirm_epochs = confirm_epochs;
  return cfg;
}

DetectorSpec DetectorSpec::from_config(const power::DetectorConfig& cfg) {
  DetectorSpec spec;
  spec.kind = cfg.kind;
  spec.history_alpha = cfg.history_alpha;
  spec.low_ratio = cfg.low_ratio;
  spec.high_ratio = cfg.high_ratio;
  spec.warmup_epochs = cfg.warmup_epochs;
  spec.confirm_epochs = cfg.confirm_epochs;
  return spec;
}

power::ResponseConfig ResponseSpec::to_config() const {
  power::ResponseConfig cfg;
  cfg.kind = kind;
  cfg.trigger = trigger;
  cfg.sanction_epochs = sanction_epochs;
  cfg.recovery_threshold = recovery_threshold;
  return cfg;
}

ResponseSpec ResponseSpec::from_config(const power::ResponseConfig& cfg) {
  ResponseSpec spec;
  spec.kind = cfg.kind;
  spec.trigger = cfg.trigger;
  spec.sanction_epochs = cfg.sanction_epochs;
  spec.recovery_threshold = cfg.recovery_threshold;
  return spec;
}

// ---------------------------------------------------------- to_json

namespace {

/// Sparse emission: a member is written only when it differs from the
/// default-constructed value, so spec files stay small and readable while
/// from_json's defaults make the round trip exact.
template <typename T>
void put_if(json::Object& o, const char* key, const T& value,
            const T& fallback) {
  if (value == fallback) return;
  if constexpr (std::is_same_v<T, double>) {
    o[key] = json::Value(value);
  } else if constexpr (std::is_integral_v<T> && !std::is_same_v<T, bool>) {
    o[key] = json::Value(static_cast<long long>(value));
  } else {
    o[key] = json::Value(value);
  }
}

json::Value checked_seed(std::uint64_t seed, const char* what) {
  if (seed > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
    throw std::invalid_argument(std::string(what) +
                                " does not fit the JSON int64 range");
  }
  return json::Value(static_cast<long long>(seed));
}

std::uint64_t read_seed(json::ObjectReader& r, const char* key,
                        std::uint64_t fallback) {
  const json::Value* v = r.optional(key);
  if (v == nullptr) return fallback;
  const std::int64_t raw = v->as_int();
  if (raw < 0) r.fail(std::string(key) + " must be >= 0");
  return static_cast<std::uint64_t>(raw);
}

template <typename T, typename Fn>
json::Array array_of(const std::vector<T>& items, Fn&& to_value) {
  json::Array out;
  out.reserve(items.size());
  for (const T& item : items) out.push_back(to_value(item));
  return out;
}

json::Value system_to_json(const SystemSpec& s) {
  const SystemSpec d;
  json::Object o;
  put_if(o, "width", s.width, d.width);
  put_if(o, "height", s.height, d.height);
  put_if(o, "epoch_cycles", s.epoch_cycles, d.epoch_cycles);
  put_if(o, "first_epoch_cycle", s.first_epoch_cycle, d.first_epoch_cycle);
  put_if(o, "budget_fraction", s.budget_fraction, d.budget_fraction);
  if (s.budgeter != d.budgeter) o["budgeter"] = power::to_string(s.budgeter);
  put_if(o, "guard_requests", s.guard_requests, d.guard_requests);
  if (s.gm_placement != d.gm_placement) {
    o["gm_placement"] = to_string(s.gm_placement);
  }
  if (s.gm_node.has_value()) {
    o["gm_node"] = json::Value(static_cast<long long>(*s.gm_node));
  }
  if (s.seed != d.seed) o["seed"] = checked_seed(s.seed, "system.seed");
  return json::Value(std::move(o));
}

json::Value workload_to_json(const WorkloadSpec& w) {
  const WorkloadSpec d;
  json::Object o;
  put_if(o, "mix", w.mix, d.mix);
  if (!w.mixes.empty()) {
    o["mixes"] = array_of(w.mixes,
                          [](const std::string& m) { return json::Value(m); });
  }
  put_if(o, "threads_per_app", w.threads_per_app, d.threads_per_app);
  return json::Value(std::move(o));
}

json::Value adaptation_to_json(const AdaptationSpec& a) {
  const AdaptationSpec d;
  json::Object o;
  put_if(o, "enabled", a.enabled, d.enabled);
  put_if(o, "alpha", a.alpha, d.alpha);
  put_if(o, "backoff_ratio", a.backoff_ratio, d.backoff_ratio);
  put_if(o, "max_on_epochs", a.max_on_epochs, d.max_on_epochs);
  put_if(o, "hold_off_epochs", a.hold_off_epochs, d.hold_off_epochs);
  return json::Value(std::move(o));
}

json::Value trojan_to_json(const TrojanSpec& t) {
  const TrojanSpec d;
  json::Object o;
  put_if(o, "active", t.active, d.active);
  put_if(o, "attenuate_victims", t.attenuate_victims, d.attenuate_victims);
  put_if(o, "boost_attackers", t.boost_attackers, d.boost_attackers);
  put_if(o, "victim_scale", t.victim_scale, d.victim_scale);
  put_if(o, "attacker_boost", t.attacker_boost, d.attacker_boost);
  put_if(o, "toggle_period_epochs", t.toggle_period_epochs,
         d.toggle_period_epochs);
  if (!(t.adaptation == d.adaptation)) {
    o["adaptation"] = adaptation_to_json(t.adaptation);
  }
  return json::Value(std::move(o));
}

json::Value epochs_to_json(const EpochSpec& e) {
  const EpochSpec d;
  json::Object o;
  put_if(o, "warmup", e.warmup, d.warmup);
  put_if(o, "measure", e.measure, d.measure);
  return json::Value(std::move(o));
}

json::Value detector_to_json(const DetectorSpec& s) {
  const DetectorSpec d;
  json::Object o;
  if (s.kind != d.kind) o["kind"] = to_string(s.kind);
  put_if(o, "history_alpha", s.history_alpha, d.history_alpha);
  put_if(o, "low_ratio", s.low_ratio, d.low_ratio);
  put_if(o, "high_ratio", s.high_ratio, d.high_ratio);
  put_if(o, "warmup_epochs", s.warmup_epochs, d.warmup_epochs);
  put_if(o, "confirm_epochs", s.confirm_epochs, d.confirm_epochs);
  return json::Value(std::move(o));
}

json::Value response_to_json(const ResponseSpec& s) {
  const ResponseSpec d;
  json::Object o;
  if (s.kind != d.kind) o["kind"] = power::to_string(s.kind);
  if (s.trigger != d.trigger) o["trigger"] = power::to_string(s.trigger);
  put_if(o, "sanction_epochs", s.sanction_epochs, d.sanction_epochs);
  put_if(o, "recovery_threshold", s.recovery_threshold, d.recovery_threshold);
  return json::Value(std::move(o));
}

json::Value band_to_json(const BandSpec& b) {
  json::Object o;
  o["low"] = json::Value(b.low);
  o["high"] = json::Value(b.high);
  return json::Value(std::move(o));
}

json::Value cluster_to_json(const ClusterSpec& c) {
  json::Object o;
  o["at"] = to_string(c.at);
  o["hts"] = json::Value(static_cast<long long>(c.hts));
  return json::Value(std::move(o));
}

json::Value roc_to_json(const RocSpec& r) {
  const RocSpec d;
  json::Object o;
  if (!r.periods.empty()) {
    o["periods"] = array_of(r.periods, [](int p) { return json::Value(p); });
  }
  if (!r.factors.empty()) {
    o["factors"] =
        array_of(r.factors, [](double f) { return json::Value(f); });
  }
  put_if(o, "placements", r.placements, d.placements);
  put_if(o, "epoch0_first_epoch_cycle", r.epoch0_first_epoch_cycle,
         d.epoch0_first_epoch_cycle);
  return json::Value(std::move(o));
}

json::Value axes_to_json(const AxesSpec& a) {
  const AxesSpec d;
  json::Object o;
  if (!a.arms.empty()) {
    o["arms"] = array_of(a.arms, [](const InfectionArm& arm) {
      json::Object ao;
      ao["nodes"] = json::Value(static_cast<long long>(arm.nodes));
      ao["ht_counts"] =
          array_of(arm.ht_counts, [](int n) { return json::Value(n); });
      return json::Value(std::move(ao));
    });
  }
  if (!a.gm_placements.empty()) {
    o["gm_placements"] = array_of(a.gm_placements, [](system::GmPlacement p) {
      return json::Value(to_string(p));
    });
  }
  if (!a.sizes.empty()) {
    o["sizes"] = array_of(a.sizes, [](int n) { return json::Value(n); });
  }
  if (!a.ht_divisors.empty()) {
    o["ht_divisors"] =
        array_of(a.ht_divisors, [](int n) { return json::Value(n); });
  }
  put_if(o, "seeds", a.seeds, d.seeds);
  if (!a.infection_targets.empty()) {
    o["infection_targets"] =
        array_of(a.infection_targets, [](double t) { return json::Value(t); });
  }
  put_if(o, "placement_max_hts", a.placement_max_hts, d.placement_max_hts);
  put_if(o, "nodes", a.nodes, d.nodes);
  put_if(o, "max_hts", a.max_hts, d.max_hts);
  put_if(o, "train_samples", a.train_samples, d.train_samples);
  put_if(o, "random_trials", a.random_trials, d.random_trials);
  put_if(o, "candidates_per_m", a.candidates_per_m, d.candidates_per_m);
  put_if(o, "shortlist", a.shortlist, d.shortlist);
  if (!a.bands.empty()) o["bands"] = array_of(a.bands, band_to_json);
  if (!a.placements.empty()) {
    o["placements"] = array_of(a.placements, cluster_to_json);
  }
  put_if(o, "cluster_hts", a.cluster_hts, d.cluster_hts);
  put_if(o, "detection_measure_epochs", a.detection_measure_epochs,
         d.detection_measure_epochs);
  if (!(a.roc == d.roc)) o["roc"] = roc_to_json(a.roc);
  if (!a.responses.empty()) {
    o["responses"] = array_of(a.responses, [](power::ResponseKind k) {
      return json::Value(power::to_string(k));
    });
  }
  if (!a.flood_sources.empty()) {
    o["flood_sources"] = array_of(a.flood_sources, [](NodeId n) {
      return json::Value(static_cast<long long>(n));
    });
  }
  put_if(o, "flood_rate", a.flood_rate, d.flood_rate);
  if (!a.toggle_periods.empty()) {
    o["toggle_periods"] =
        array_of(a.toggle_periods, [](int p) { return json::Value(p); });
  }
  put_if(o, "duty_warmup_epochs", a.duty_warmup_epochs, d.duty_warmup_epochs);
  put_if(o, "duty_measure_epochs", a.duty_measure_epochs,
         d.duty_measure_epochs);
  if (!a.budgeters.empty()) {
    o["budgeters"] = array_of(a.budgeters, [](power::BudgeterKind k) {
      return json::Value(power::to_string(k));
    });
  }
  if (!a.ht_counts.empty()) {
    o["ht_counts"] =
        array_of(a.ht_counts, [](int n) { return json::Value(n); });
  }
  return json::Value(std::move(o));
}

}  // namespace

json::Value ScenarioSpec::to_json() const {
  json::Object o;
  o["schema_version"] = json::Value(static_cast<long long>(schema_version));
  o["name"] = json::Value(name);
  o["kind"] = json::Value(to_string(kind));
  if (!title.empty()) o["title"] = json::Value(title);
  if (!paper_ref.empty()) o["paper_ref"] = json::Value(paper_ref);
  if (!expectation.empty()) o["expectation"] = json::Value(expectation);

  if (json::Value sys = system_to_json(system); !sys.as_object().empty()) {
    o["system"] = std::move(sys);
  }
  if (json::Value w = workload_to_json(workload); !w.as_object().empty()) {
    o["workload"] = std::move(w);
  }
  if (json::Value t = trojan_to_json(trojan); !t.as_object().empty()) {
    o["trojan"] = std::move(t);
  }
  if (json::Value e = epochs_to_json(epochs); !e.as_object().empty()) {
    o["epochs"] = std::move(e);
  }
  if (detector.has_value()) o["detector"] = detector_to_json(*detector);
  if (response.has_value()) o["response"] = response_to_json(*response);
  if (json::Value a = axes_to_json(axes); !a.as_object().empty()) {
    o["axes"] = std::move(a);
  }
  if (seed != 1) o["seed"] = checked_seed(seed, "seed");
  if (threads != 0) o["threads"] = json::Value(threads);
  if (!quick.is_null()) o["quick"] = quick;
  return json::Value(std::move(o));
}

// -------------------------------------------------------------- from_json

namespace {

int read_int(const json::Value& v) { return static_cast<int>(v.as_int()); }

template <typename Fn>
auto read_array(const json::Value& v, Fn&& item) {
  using R = decltype(item(v));
  std::vector<R> out;
  for (const json::Value& e : v.as_array()) out.push_back(item(e));
  return out;
}

SystemSpec system_from_json(const json::Value& v, const std::string& path) {
  SystemSpec s;
  json::ObjectReader r(v.as_object(), path);
  s.width = static_cast<int>(r.get_int("width", s.width));
  s.height = static_cast<int>(r.get_int("height", s.height));
  s.epoch_cycles = static_cast<Cycle>(
      r.get_int("epoch_cycles", static_cast<std::int64_t>(s.epoch_cycles)));
  s.first_epoch_cycle = static_cast<Cycle>(r.get_int(
      "first_epoch_cycle", static_cast<std::int64_t>(s.first_epoch_cycle)));
  s.budget_fraction = r.get_double("budget_fraction", s.budget_fraction);
  if (const json::Value* b = r.optional("budgeter")) {
    s.budgeter = budgeter_kind_from_string(b->as_string());
  }
  s.guard_requests = r.get_bool("guard_requests", s.guard_requests);
  if (const json::Value* g = r.optional("gm_placement")) {
    s.gm_placement = gm_placement_from_string(g->as_string());
  }
  if (const json::Value* g = r.optional("gm_node")) {
    s.gm_node = static_cast<NodeId>(g->as_int());
  }
  s.seed = read_seed(r, "seed", s.seed);
  r.finish();
  return s;
}

WorkloadSpec workload_from_json(const json::Value& v,
                                const std::string& path) {
  WorkloadSpec w;
  json::ObjectReader r(v.as_object(), path);
  w.mix = r.get_string("mix", w.mix);
  if (const json::Value* m = r.optional("mixes")) {
    w.mixes =
        read_array(*m, [](const json::Value& e) { return e.as_string(); });
  }
  w.threads_per_app =
      static_cast<int>(r.get_int("threads_per_app", w.threads_per_app));
  r.finish();
  return w;
}

AdaptationSpec adaptation_from_json(const json::Value& v,
                                    const std::string& path) {
  AdaptationSpec a;
  json::ObjectReader r(v.as_object(), path);
  a.enabled = r.get_bool("enabled", a.enabled);
  a.alpha = r.get_double("alpha", a.alpha);
  a.backoff_ratio = r.get_double("backoff_ratio", a.backoff_ratio);
  a.max_on_epochs =
      static_cast<int>(r.get_int("max_on_epochs", a.max_on_epochs));
  a.hold_off_epochs =
      static_cast<int>(r.get_int("hold_off_epochs", a.hold_off_epochs));
  r.finish();
  return a;
}

TrojanSpec trojan_from_json(const json::Value& v, const std::string& path) {
  TrojanSpec t;
  json::ObjectReader r(v.as_object(), path);
  t.active = r.get_bool("active", t.active);
  t.attenuate_victims = r.get_bool("attenuate_victims", t.attenuate_victims);
  t.boost_attackers = r.get_bool("boost_attackers", t.boost_attackers);
  t.victim_scale = r.get_double("victim_scale", t.victim_scale);
  t.attacker_boost = r.get_double("attacker_boost", t.attacker_boost);
  t.toggle_period_epochs = static_cast<int>(
      r.get_int("toggle_period_epochs", t.toggle_period_epochs));
  if (const json::Value* a = r.optional("adaptation")) {
    t.adaptation = adaptation_from_json(*a, path + ".adaptation");
  }
  r.finish();
  return t;
}

EpochSpec epochs_from_json(const json::Value& v, const std::string& path) {
  EpochSpec e;
  json::ObjectReader r(v.as_object(), path);
  e.warmup = static_cast<int>(r.get_int("warmup", e.warmup));
  e.measure = static_cast<int>(r.get_int("measure", e.measure));
  r.finish();
  return e;
}

DetectorSpec detector_from_json(const json::Value& v,
                                const std::string& path) {
  DetectorSpec s;
  json::ObjectReader r(v.as_object(), path);
  if (const json::Value* k = r.optional("kind")) {
    s.kind = detector_kind_from_string(k->as_string());
  }
  s.history_alpha = r.get_double("history_alpha", s.history_alpha);
  s.low_ratio = r.get_double("low_ratio", s.low_ratio);
  s.high_ratio = r.get_double("high_ratio", s.high_ratio);
  s.warmup_epochs =
      static_cast<int>(r.get_int("warmup_epochs", s.warmup_epochs));
  s.confirm_epochs =
      static_cast<int>(r.get_int("confirm_epochs", s.confirm_epochs));
  r.finish();
  return s;
}

ResponseSpec response_from_json(const json::Value& v,
                                const std::string& path) {
  ResponseSpec s;
  json::ObjectReader r(v.as_object(), path);
  if (const json::Value* k = r.optional("kind")) {
    s.kind = power::response_kind_from_string(k->as_string());
  }
  if (const json::Value* t = r.optional("trigger")) {
    s.trigger = power::response_trigger_from_string(t->as_string());
  }
  s.sanction_epochs =
      static_cast<int>(r.get_int("sanction_epochs", s.sanction_epochs));
  s.recovery_threshold =
      r.get_double("recovery_threshold", s.recovery_threshold);
  r.finish();
  return s;
}

BandSpec band_from_json(const json::Value& v, const std::string& path) {
  BandSpec b;
  json::ObjectReader r(v.as_object(), path);
  b.low = r.require("low").as_double();
  b.high = r.require("high").as_double();
  r.finish();
  return b;
}

ClusterSpec cluster_from_json(const json::Value& v, const std::string& path) {
  ClusterSpec c;
  json::ObjectReader r(v.as_object(), path);
  c.at = cluster_at_from_string(r.require("at").as_string());
  c.hts = static_cast<int>(r.get_int("hts", c.hts));
  r.finish();
  return c;
}

RocSpec roc_from_json(const json::Value& v, const std::string& path) {
  RocSpec roc;
  json::ObjectReader r(v.as_object(), path);
  if (const json::Value* p = r.optional("periods")) {
    roc.periods = read_array(*p, read_int);
  }
  if (const json::Value* f = r.optional("factors")) {
    roc.factors =
        read_array(*f, [](const json::Value& e) { return e.as_double(); });
  }
  roc.placements = static_cast<int>(r.get_int("placements", roc.placements));
  roc.epoch0_first_epoch_cycle = static_cast<Cycle>(
      r.get_int("epoch0_first_epoch_cycle",
                static_cast<std::int64_t>(roc.epoch0_first_epoch_cycle)));
  r.finish();
  return roc;
}

AxesSpec axes_from_json(const json::Value& v, const std::string& path) {
  AxesSpec a;
  json::ObjectReader r(v.as_object(), path);
  if (const json::Value* arms = r.optional("arms")) {
    a.arms = read_array(*arms, [&](const json::Value& e) {
      InfectionArm arm;
      json::ObjectReader ar(e.as_object(), path + ".arms[]");
      arm.nodes = static_cast<int>(ar.require("nodes").as_int());
      arm.ht_counts = read_array(ar.require("ht_counts"), read_int);
      ar.finish();
      return arm;
    });
  }
  if (const json::Value* g = r.optional("gm_placements")) {
    a.gm_placements = read_array(*g, [](const json::Value& e) {
      return gm_placement_from_string(e.as_string());
    });
  }
  if (const json::Value* s = r.optional("sizes")) {
    a.sizes = read_array(*s, read_int);
  }
  if (const json::Value* d = r.optional("ht_divisors")) {
    a.ht_divisors = read_array(*d, read_int);
  }
  a.seeds = static_cast<int>(r.get_int("seeds", a.seeds));
  if (const json::Value* t = r.optional("infection_targets")) {
    a.infection_targets =
        read_array(*t, [](const json::Value& e) { return e.as_double(); });
  }
  a.placement_max_hts =
      static_cast<int>(r.get_int("placement_max_hts", a.placement_max_hts));
  a.nodes = static_cast<int>(r.get_int("nodes", a.nodes));
  a.max_hts = static_cast<int>(r.get_int("max_hts", a.max_hts));
  a.train_samples =
      static_cast<int>(r.get_int("train_samples", a.train_samples));
  a.random_trials =
      static_cast<int>(r.get_int("random_trials", a.random_trials));
  a.candidates_per_m =
      static_cast<int>(r.get_int("candidates_per_m", a.candidates_per_m));
  a.shortlist = static_cast<int>(r.get_int("shortlist", a.shortlist));
  if (const json::Value* b = r.optional("bands")) {
    a.bands = read_array(*b, [&](const json::Value& e) {
      return band_from_json(e, path + ".bands[]");
    });
  }
  if (const json::Value* p = r.optional("placements")) {
    a.placements = read_array(*p, [&](const json::Value& e) {
      return cluster_from_json(e, path + ".placements[]");
    });
  }
  a.cluster_hts = static_cast<int>(r.get_int("cluster_hts", a.cluster_hts));
  a.detection_measure_epochs = static_cast<int>(
      r.get_int("detection_measure_epochs", a.detection_measure_epochs));
  if (const json::Value* roc = r.optional("roc")) {
    a.roc = roc_from_json(*roc, path + ".roc");
  }
  if (const json::Value* resp = r.optional("responses")) {
    a.responses = read_array(*resp, [](const json::Value& e) {
      return power::response_kind_from_string(e.as_string());
    });
  }
  if (const json::Value* f = r.optional("flood_sources")) {
    a.flood_sources = read_array(*f, [](const json::Value& e) {
      return static_cast<NodeId>(e.as_int());
    });
  }
  a.flood_rate = r.get_double("flood_rate", a.flood_rate);
  if (const json::Value* t = r.optional("toggle_periods")) {
    a.toggle_periods = read_array(*t, read_int);
  }
  a.duty_warmup_epochs =
      static_cast<int>(r.get_int("duty_warmup_epochs", a.duty_warmup_epochs));
  a.duty_measure_epochs = static_cast<int>(
      r.get_int("duty_measure_epochs", a.duty_measure_epochs));
  if (const json::Value* b = r.optional("budgeters")) {
    a.budgeters = read_array(*b, [](const json::Value& e) {
      return budgeter_kind_from_string(e.as_string());
    });
  }
  if (const json::Value* h = r.optional("ht_counts")) {
    a.ht_counts = read_array(*h, read_int);
  }
  r.finish();
  return a;
}

}  // namespace

ScenarioSpec ScenarioSpec::from_json(const json::Value& v) {
  ScenarioSpec spec;
  json::ObjectReader r(v.as_object(), "scenario");
  spec.schema_version = r.require("schema_version").as_int();
  if (spec.schema_version != kSchemaVersion) {
    r.fail("schema_version " + std::to_string(spec.schema_version) +
           " is not supported (this build reads version " +
           std::to_string(kSchemaVersion) + ")");
  }
  spec.name = r.require("name").as_string();
  spec.kind = scenario_kind_from_string(r.require("kind").as_string());
  spec.title = r.get_string("title", "");
  spec.paper_ref = r.get_string("paper_ref", "");
  spec.expectation = r.get_string("expectation", "");
  if (const json::Value* s = r.optional("system")) {
    spec.system = system_from_json(*s, "scenario.system");
  }
  if (const json::Value* w = r.optional("workload")) {
    spec.workload = workload_from_json(*w, "scenario.workload");
  }
  if (const json::Value* t = r.optional("trojan")) {
    spec.trojan = trojan_from_json(*t, "scenario.trojan");
  }
  if (const json::Value* e = r.optional("epochs")) {
    spec.epochs = epochs_from_json(*e, "scenario.epochs");
  }
  if (const json::Value* d = r.optional("detector")) {
    spec.detector = detector_from_json(*d, "scenario.detector");
  }
  if (const json::Value* resp = r.optional("response")) {
    spec.response = response_from_json(*resp, "scenario.response");
  }
  if (const json::Value* a = r.optional("axes")) {
    spec.axes = axes_from_json(*a, "scenario.axes");
  }
  spec.seed = read_seed(r, "seed", spec.seed);
  spec.threads = static_cast<int>(r.get_int("threads", spec.threads));
  if (const json::Value* q = r.optional("quick")) {
    if (!q->is_object()) r.fail("quick must be an object overlay");
    spec.quick = *q;
  }
  r.finish();
  return spec;
}

ScenarioSpec load_spec_file(const std::string& path) {
  // parse_file already prefixes the path on read/parse errors; schema and
  // validation errors speak in terms of "scenario.<field>" and need the
  // file named too.
  const json::Value doc = json::parse_file(path);
  try {
    ScenarioSpec spec = ScenarioSpec::from_json(doc);
    spec.validate();
    return spec;
  } catch (const std::exception& e) {
    throw std::runtime_error("scenario spec " + path + ": " + e.what());
  }
}

// --------------------------------------------------------------- validate

namespace {

[[noreturn]] void invalid(const std::string& name, const std::string& what) {
  throw std::invalid_argument("scenario \"" + name + "\": " + what);
}

void check_mix_name(const std::string& name, const std::string& mix) {
  if (mix.empty()) return;  // uniform infection-only workload
  for (const auto& m : workload::standard_mixes()) {
    if (m.name == mix) return;
  }
  invalid(name, "unknown mix \"" + mix + "\"");
}

void check_mixes(const std::string& name,
                 const std::vector<std::string>& mixes) {
  if (mixes.empty()) invalid(name, "workload.mixes must not be empty");
  for (const auto& m : mixes) {
    if (m.empty()) invalid(name, "workload.mixes entries must be named");
    check_mix_name(name, m);
  }
}

}  // namespace

void ScenarioSpec::validate() const {
  if (name.empty()) invalid("(unnamed)", "name must not be empty");
  if (schema_version != kSchemaVersion) {
    invalid(name, "unsupported schema_version");
  }
  // The chip must build (mesh shape, GM bounds) for every simulating kind.
  system.to_system_config().validate();
  check_mix_name(name, workload.mix);
  if (trojan.victim_scale <= 0.0 || trojan.victim_scale > 1.0) {
    invalid(name, "trojan.victim_scale must be in (0, 1]");
  }
  if (trojan.attacker_boost < 1.0) {
    invalid(name, "trojan.attacker_boost must be >= 1");
  }
  if (trojan.toggle_period_epochs < 0) {
    invalid(name, "trojan.toggle_period_epochs must be >= 0");
  }
  {
    // Ranges are checked even when disabled: kDefenseClosedLoop carries
    // the parameters with enabled=false and flips the switch per arm.
    const AdaptationSpec& a = trojan.adaptation;
    if (a.enabled && trojan.toggle_period_epochs > 0) {
      invalid(name,
              "trojan.adaptation and trojan.toggle_period_epochs are rival "
              "duty-cycle controllers; enable one");
    }
    if (a.alpha <= 0.0 || a.alpha > 1.0) {
      invalid(name, "trojan.adaptation.alpha must be in (0, 1]");
    }
    if (a.backoff_ratio <= 0.0 || a.backoff_ratio >= 1.0) {
      invalid(name, "trojan.adaptation.backoff_ratio must be in (0, 1)");
    }
    if (a.max_on_epochs < 1 || a.hold_off_epochs < 1) {
      invalid(name,
              "trojan.adaptation.max_on_epochs and hold_off_epochs must "
              "be >= 1");
    }
  }
  if (response.has_value()) {
    if (!detector.has_value()) {
      invalid(name, "response requires a detector to act on");
    }
    if (response->sanction_epochs < 1) {
      invalid(name, "response.sanction_epochs must be >= 1");
    }
    if (response->recovery_threshold <= 0.0 ||
        response->recovery_threshold > 2.0) {
      invalid(name, "response.recovery_threshold must be in (0, 2]");
    }
  }
  if (epochs.warmup < 0 || epochs.measure < 1) {
    invalid(name, "epochs.warmup must be >= 0 and epochs.measure >= 1");
  }
  if (threads < 0) invalid(name, "threads must be >= 0");

  const auto require_bands = [&] {
    if (axes.bands.empty()) invalid(name, "axes.bands must not be empty");
    for (const BandSpec& b : axes.bands) {
      if (b.low <= 0.0 || b.high <= b.low) {
        invalid(name, "axes.bands entries need 0 < low < high");
      }
    }
  };
  const auto require_placements = [&] {
    if (axes.placements.empty()) {
      invalid(name, "axes.placements must not be empty");
    }
    for (const ClusterSpec& c : axes.placements) {
      if (c.hts < 1) invalid(name, "axes.placements hts must be >= 1");
    }
  };

  switch (kind) {
    case ScenarioKind::kInfectionVsHtCount:
      if (axes.arms.empty()) invalid(name, "axes.arms must not be empty");
      for (const InfectionArm& arm : axes.arms) {
        (void)mesh_for_size(arm.nodes);
        if (arm.ht_counts.empty()) {
          invalid(name, "axes.arms ht_counts must not be empty");
        }
      }
      if (axes.gm_placements.empty()) {
        invalid(name, "axes.gm_placements must not be empty");
      }
      if (axes.seeds < 1) invalid(name, "axes.seeds must be >= 1");
      break;
    case ScenarioKind::kInfectionVsDistribution:
      if (axes.sizes.empty()) invalid(name, "axes.sizes must not be empty");
      for (const int size : axes.sizes) (void)mesh_for_size(size);
      if (axes.ht_divisors.empty()) {
        invalid(name, "axes.ht_divisors must not be empty");
      }
      for (const int d : axes.ht_divisors) {
        if (d < 1) invalid(name, "axes.ht_divisors must be >= 1");
      }
      if (axes.seeds < 1) invalid(name, "axes.seeds must be >= 1");
      break;
    case ScenarioKind::kAttackEffect:
    case ScenarioKind::kPerformanceChange:
      check_mixes(name, workload.mixes);
      if (axes.infection_targets.empty()) {
        invalid(name, "axes.infection_targets must not be empty");
      }
      for (const double t : axes.infection_targets) {
        if (t <= 0.0 || t > 1.0) {
          invalid(name, "axes.infection_targets must be in (0, 1]");
        }
      }
      if (axes.placement_max_hts < 1) {
        invalid(name, "axes.placement_max_hts must be >= 1");
      }
      break;
    case ScenarioKind::kPlacementStudy:
      check_mixes(name, workload.mixes);
      (void)mesh_for_size(axes.nodes);
      if (axes.max_hts < 1) invalid(name, "axes.max_hts must be >= 1");
      if (axes.train_samples < 2) {
        invalid(name, "axes.train_samples must be >= 2 (model fit)");
      }
      if (axes.random_trials < 1) {
        invalid(name, "axes.random_trials must be >= 1");
      }
      if (axes.shortlist < 1 || axes.candidates_per_m < axes.shortlist) {
        invalid(name, "need candidates_per_m >= shortlist >= 1");
      }
      break;
    case ScenarioKind::kDefenseSweep:
      require_bands();
      require_placements();
      if (axes.roc.enabled()) {
        if (axes.roc.placements >
            static_cast<int>(axes.placements.size())) {
          invalid(name, "axes.roc.placements exceeds axes.placements");
        }
        for (const double f : axes.roc.factors) {
          if (f <= 0.0 || f > 1.0) {
            invalid(name, "axes.roc.factors must be in (0, 1]");
          }
        }
        for (const int p : axes.roc.periods) {
          if (p < 0) invalid(name, "axes.roc.periods must be >= 0");
        }
      }
      break;
    case ScenarioKind::kDefenseEvaluation:
      check_mixes(name, workload.mixes);
      if (axes.cluster_hts < 1) invalid(name, "axes.cluster_hts must be >= 1");
      if (axes.detection_measure_epochs < 1) {
        invalid(name, "axes.detection_measure_epochs must be >= 1");
      }
      break;
    case ScenarioKind::kAttackComparison: {
      if (workload.mix.empty()) invalid(name, "workload.mix must be set");
      if (axes.flood_sources.empty()) {
        invalid(name, "axes.flood_sources must not be empty");
      }
      const auto node_count =
          static_cast<NodeId>(system.width * system.height);
      for (const NodeId src : axes.flood_sources) {
        if (src >= node_count) {
          invalid(name, "axes.flood_sources outside the mesh");
        }
      }
      if (axes.flood_rate <= 0.0) {
        invalid(name, "axes.flood_rate must be > 0");
      }
      if (axes.toggle_periods.empty()) {
        invalid(name, "axes.toggle_periods must not be empty");
      }
      if (axes.duty_warmup_epochs < 0 || axes.duty_measure_epochs < 1) {
        invalid(name, "duty epochs need warmup >= 0 and measure >= 1");
      }
      if (axes.cluster_hts < 1) invalid(name, "axes.cluster_hts must be >= 1");
      break;
    }
    case ScenarioKind::kBudgeterAblation:
      if (workload.mix.empty()) invalid(name, "workload.mix must be set");
      if (axes.budgeters.empty()) {
        invalid(name, "axes.budgeters must not be empty");
      }
      if (axes.cluster_hts < 1) invalid(name, "axes.cluster_hts must be >= 1");
      break;
    case ScenarioKind::kConfigReport:
      break;
    case ScenarioKind::kBenchmarkReport:
      (void)mesh_for_size(axes.nodes);
      break;
    case ScenarioKind::kAreaPowerReport:
      if (axes.ht_counts.empty()) {
        invalid(name, "axes.ht_counts must not be empty");
      }
      if (axes.nodes < 1) invalid(name, "axes.nodes must be >= 1");
      break;
    case ScenarioKind::kDefenseClosedLoop:
      require_placements();
      if (!detector.has_value()) {
        invalid(name, "detector must be set (responses need verdicts)");
      }
      if (!response.has_value()) {
        invalid(name,
                "response must be set (trigger / sanction parameters; "
                "axes.responses supplies the policy axis)");
      }
      if (axes.responses.empty()) {
        invalid(name, "axes.responses must not be empty");
      }
      if (trojan.toggle_period_epochs < 1) {
        invalid(name,
                "trojan.toggle_period_epochs must be >= 1 (the static "
                "duty-cycled arm)");
      }
      break;
  }
}

// ----------------------------------------------------------- quick / set

json::Value merge_patch(const json::Value& base, const json::Value& patch) {
  if (!base.is_object() || !patch.is_object()) return patch;
  json::Value merged = base;
  json::Object& out = merged.as_object();
  for (const auto& [key, value] : patch.as_object()) {
    if (const json::Value* existing = out.find(key)) {
      out[key] = merge_patch(*existing, value);
    } else {
      out[key] = value;
    }
  }
  return merged;
}

ScenarioSpec ScenarioSpec::with_quick() const {
  if (quick.is_null()) return *this;
  ScenarioSpec stripped = *this;
  stripped.quick = json::Value();
  const json::Value merged = merge_patch(stripped.to_json(), quick);
  ScenarioSpec out = from_json(merged);
  out.validate();
  return out;
}

void apply_override(json::Value& spec_json, std::string_view dotted_key,
                    std::string_view value_text) {
  json::Value parsed;
  try {
    parsed = json::parse(value_text);
  } catch (const std::exception&) {
    parsed = json::Value(value_text);  // bare strings need no quotes
  }

  json::Value* node = &spec_json;
  std::string_view rest = dotted_key;
  for (;;) {
    const std::size_t dot = rest.find('.');
    const std::string_view head = rest.substr(0, dot);
    if (head.empty()) {
      throw std::runtime_error("--set: empty path segment in \"" +
                               std::string(dotted_key) + "\"");
    }
    if (!node->is_object()) {
      throw std::runtime_error("--set: \"" + std::string(dotted_key) +
                               "\" crosses a non-object value");
    }
    json::Object& o = node->as_object();
    if (dot == std::string_view::npos) {
      o[head] = std::move(parsed);
      return;
    }
    node = &o[head];  // creates a null member, promoted to object below
    if (node->is_null()) *node = json::Value(json::Object{});
    rest = rest.substr(dot + 1);
  }
}

// ---------------------------------------------------------------- builder

ScenarioBuilder::ScenarioBuilder(std::string name, ScenarioKind kind) {
  spec_.name = std::move(name);
  spec_.kind = kind;
}

ScenarioBuilder& ScenarioBuilder::title(std::string text) {
  spec_.title = std::move(text);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::paper_ref(std::string text) {
  spec_.paper_ref = std::move(text);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::expectation(std::string text) {
  spec_.expectation = std::move(text);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::mesh(int width, int height) {
  spec_.system.width = width;
  spec_.system.height = height;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::size(int nodes) {
  const auto [w, h] = mesh_for_size(nodes);
  return mesh(w, h);
}
ScenarioBuilder& ScenarioBuilder::epoch_cycles(Cycle cycles) {
  spec_.system.epoch_cycles = cycles;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::first_epoch_cycle(Cycle cycle) {
  spec_.system.first_epoch_cycle = cycle;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::budget_fraction(double fraction) {
  spec_.system.budget_fraction = fraction;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::budgeter(power::BudgeterKind kind) {
  spec_.system.budgeter = kind;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::guard_requests(bool on) {
  spec_.system.guard_requests = on;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::gm_placement(system::GmPlacement placement) {
  spec_.system.gm_placement = placement;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::mix(std::string name) {
  spec_.workload.mix = std::move(name);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::standard_mixes() {
  spec_.workload.mixes.clear();
  for (const auto& m : workload::standard_mixes()) {
    spec_.workload.mixes.push_back(m.name);
  }
  return *this;
}
ScenarioBuilder& ScenarioBuilder::threads_per_app(int threads) {
  spec_.workload.threads_per_app = threads;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::trojan_active(bool active) {
  spec_.trojan.active = active;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::victim_scale(double scale) {
  spec_.trojan.victim_scale = scale;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::attacker_boost(double boost) {
  spec_.trojan.attacker_boost = boost;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::toggle_period(int epochs) {
  spec_.trojan.toggle_period_epochs = epochs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::warmup_epochs(int epochs) {
  spec_.epochs.warmup = epochs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::measure_epochs(int epochs) {
  spec_.epochs.measure = epochs;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::detector(DetectorSpec spec) {
  spec_.detector = spec;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::response(ResponseSpec spec) {
  spec_.response = spec;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::adaptation(AdaptationSpec spec) {
  spec_.trojan.adaptation = spec;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t value) {
  spec_.seed = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::threads(int count) {
  spec_.threads = count;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::quick(std::string_view overlay_json) {
  spec_.quick = json::parse(overlay_json);
  return *this;
}

ScenarioSpec ScenarioBuilder::build() const {
  spec_.validate();
  // The quick variant must be valid too; surface overlay typos at build
  // (i.e. registry construction) time, not at --quick use time.
  (void)spec_.with_quick();
  return spec_;
}

}  // namespace htpb::scenario
