#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/area_power.hpp"
#include "core/attack_model.hpp"
#include "core/campaign.hpp"
#include "core/defense_sweep.hpp"
#include "core/flooding.hpp"
#include "core/infection.hpp"
#include "core/optimizer.hpp"
#include "core/parallel_sweep.hpp"
#include "core/placement.hpp"
#include "noc/network.hpp"
#include "sim/engine.hpp"
#include "system/manycore_system.hpp"
#include "workload/application.hpp"
#include "workload/benchmark_profile.hpp"

namespace htpb::scenario {

namespace {

[[nodiscard]] double now_seconds() {
  using clock = std::chrono::steady_clock;
  // htpb-lint: allow(nondet-call) elapsed time reported as run metadata, not part of scenario results
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] const workload::Mix& mix_by_name(const std::string& name) {
  for (const auto& m : workload::standard_mixes()) {
    if (m.name == name) return m;
  }
  throw std::invalid_argument("unknown mix \"" + name + "\"");
}

/// The spec's campaign sections as a core::CampaignConfig. `mix_name`
/// empty = the uniform infection-only workload.
[[nodiscard]] core::CampaignConfig campaign_config(
    const ScenarioSpec& spec, const std::string& mix_name) {
  core::CampaignConfig cfg;
  cfg.system = spec.system.to_system_config();
  if (!mix_name.empty()) cfg.mix = mix_by_name(mix_name);
  cfg.threads_per_app = spec.workload.threads_per_app;
  cfg.trojan.active = spec.trojan.active;
  cfg.trojan.attenuate_victims = spec.trojan.attenuate_victims;
  cfg.trojan.boost_attackers = spec.trojan.boost_attackers;
  cfg.trojan.victim_scale = spec.trojan.victim_scale;
  cfg.trojan.attacker_boost = spec.trojan.attacker_boost;
  cfg.toggle_period_epochs = spec.trojan.toggle_period_epochs;
  cfg.trojan.adapt.enabled = spec.trojan.adaptation.enabled;
  cfg.trojan.adapt.alpha = spec.trojan.adaptation.alpha;
  cfg.trojan.adapt.backoff_ratio = spec.trojan.adaptation.backoff_ratio;
  cfg.trojan.adapt.max_on_epochs = spec.trojan.adaptation.max_on_epochs;
  cfg.trojan.adapt.hold_off_epochs = spec.trojan.adaptation.hold_off_epochs;
  cfg.warmup_epochs = spec.epochs.warmup;
  cfg.measure_epochs = spec.epochs.measure;
  if (spec.detector.has_value()) cfg.detector = spec.detector->to_config();
  if (spec.response.has_value()) cfg.response = spec.response->to_config();
  cfg.checkpoint_dir = spec.checkpoint_dir;
  return cfg;
}

/// `spec.system` with the mesh swapped for a paper preset size.
[[nodiscard]] SystemSpec system_with_size(const SystemSpec& base, int nodes) {
  SystemSpec out = base;
  const auto [w, h] = mesh_for_size(nodes);
  out.width = w;
  out.height = h;
  return out;
}

[[nodiscard]] std::vector<NodeId> resolve_cluster(const ClusterSpec& c,
                                                  const MeshGeometry& geom,
                                                  NodeId gm) {
  Coord at{};
  switch (c.at) {
    case ClusterSpec::At::kGm: at = geom.coord_of(gm); break;
    case ClusterSpec::At::kCenter: at = geom.center(); break;
    case ClusterSpec::At::kCorner: at = MeshGeometry::corner(); break;
    case ClusterSpec::At::kQuarter:
      at = Coord{geom.width() / 4, geom.height() / 4};
      break;
  }
  return core::clustered_placement(geom, c.hts, at, gm);
}

/// The {ewma, cohort} x axes.bands detector grid shared by the defense
/// sweep's ROC replay and the --replay-trace surface -- one builder so
/// the two can never diverge in grid order or membership.
[[nodiscard]] std::vector<power::DetectorConfig> roc_detector_grid(
    const ScenarioSpec& spec) {
  std::vector<power::DetectorConfig> grid;
  for (const auto kind :
       {power::DetectorKind::kSelfEwma, power::DetectorKind::kCohortMedian}) {
    for (const BandSpec& band : spec.axes.bands) {
      power::DetectorConfig d;
      d.kind = kind;
      d.low_ratio = band.low;
      d.high_ratio = band.high;
      grid.push_back(d);
    }
  }
  return grid;
}

[[nodiscard]] json::Value app_list(const core::AttackCampaign& campaign) {
  json::Array apps;
  for (const auto& app : campaign.apps()) {
    json::Object ao;
    ao["name"] = json::Value(app.profile.name);
    ao["attacker"] = json::Value(app.is_attacker());
    ao["cores"] = json::Value(static_cast<long long>(app.cores.size()));
    apps.push_back(json::Value(std::move(ao)));
  }
  return json::Value(std::move(apps));
}

// ------------------------------------------------------------ per kind

/// Fig. 3. Stochastic contract (= the legacy bench): random placements
/// for cell (seed index s, #HTs h) draw from Rng(seed + s*77 + h); the
/// default seed 1000 reproduces the pre-registry bench bit for bit.
json::Value run_infection_vs_ht_count(const ScenarioSpec& spec) {
  json::Array arms;
  for (const InfectionArm& arm : spec.axes.arms) {
    json::Array rows;
    for (const int hts : arm.ht_counts) {
      json::Array cells;
      for (const system::GmPlacement gm : spec.axes.gm_placements) {
        SystemSpec sys = system_with_size(spec.system, arm.nodes);
        sys.gm_placement = gm;
        ScenarioSpec cell_spec = spec;
        cell_spec.system = sys;
        core::AttackCampaign campaign(campaign_config(cell_spec, ""));
        const MeshGeometry geom(sys.width, sys.height);
        const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
        double simulated = 0.0;
        double analytic = 0.0;
        for (int s = 0; s < spec.axes.seeds; ++s) {
          Rng rng(spec.seed + static_cast<std::uint64_t>(s) * 77 +
                  static_cast<std::uint64_t>(hts));
          const auto nodes =
              core::random_placement(geom, hts, rng, campaign.gm_node());
          simulated += campaign.run_infection_only(nodes);
          analytic += analyzer.predicted_rate(nodes);
        }
        json::Object cell;
        cell["gm"] = json::Value(to_string(gm));
        cell["simulated"] = json::Value(simulated / spec.axes.seeds);
        cell["analytic"] = json::Value(analytic / spec.axes.seeds);
        cells.push_back(json::Value(std::move(cell)));
      }
      json::Object row;
      row["hts"] = json::Value(hts);
      row["cells"] = json::Value(std::move(cells));
      rows.push_back(json::Value(std::move(row)));
    }
    json::Object arm_out;
    arm_out["nodes"] = json::Value(arm.nodes);
    arm_out["rows"] = json::Value(std::move(rows));
    arms.push_back(json::Value(std::move(arm_out)));
  }
  json::Object payload;
  payload["arms"] = json::Value(std::move(arms));
  return json::Value(std::move(payload));
}

/// Fig. 4. Random-placement cells draw from Rng(seed + s*13 + size);
/// seed 500 reproduces the legacy bench.
json::Value run_infection_vs_distribution(const ScenarioSpec& spec) {
  json::Array divisors;
  for (const int divisor : spec.axes.ht_divisors) {
    json::Array rows;
    for (const int size : spec.axes.sizes) {
      const int hts = size / divisor;
      ScenarioSpec cell_spec = spec;
      cell_spec.system = system_with_size(spec.system, size);
      core::AttackCampaign campaign(campaign_config(cell_spec, ""));
      const MeshGeometry geom(cell_spec.system.width,
                              cell_spec.system.height);

      const auto center_nodes = core::clustered_placement(
          geom, hts, geom.center(), campaign.gm_node());
      const auto corner_nodes = core::clustered_placement(
          geom, hts, MeshGeometry::corner(), campaign.gm_node());
      const double rate_center = campaign.run_infection_only(center_nodes);
      const double rate_corner = campaign.run_infection_only(corner_nodes);
      double rate_random = 0.0;
      for (int s = 0; s < spec.axes.seeds; ++s) {
        Rng rng(spec.seed + static_cast<std::uint64_t>(s) * 13 +
                static_cast<std::uint64_t>(size));
        rate_random += campaign.run_infection_only(
            core::random_placement(geom, hts, rng, campaign.gm_node()));
      }
      rate_random /= spec.axes.seeds;

      json::Object row;
      row["size"] = json::Value(size);
      row["hts"] = json::Value(hts);
      row["center"] = json::Value(rate_center);
      row["random"] = json::Value(rate_random);
      row["corner"] = json::Value(rate_corner);
      rows.push_back(json::Value(std::move(row)));
    }
    json::Object d;
    d["divisor"] = json::Value(divisor);
    d["rows"] = json::Value(std::move(rows));
    divisors.push_back(json::Value(std::move(d)));
  }
  json::Object payload;
  payload["divisors"] = json::Value(std::move(divisors));
  return json::Value(std::move(payload));
}

/// Figs. 5 and 6 share one sweep: per mix, greedy target-coverage
/// placements off one serial Rng(seed) stream (legacy constant: 42),
/// campaigns fanned across the pool. The result carries both the Q
/// reduction (Fig. 5) and the per-app Theta detail (Fig. 6).
json::Value run_attack_sweep(const ScenarioSpec& spec,
                             const core::ParallelSweepRunner& runner) {
  json::Array mixes_out;
  for (const std::string& mix_name : spec.workload.mixes) {
    core::AttackCampaign campaign(campaign_config(spec, mix_name));
    const MeshGeometry geom(spec.system.width, spec.system.height);
    const core::InfectionAnalyzer analyzer(geom, campaign.gm_node());
    Rng rng(spec.seed);
    std::vector<std::vector<NodeId>> node_sets;
    node_sets.reserve(spec.axes.infection_targets.size());
    for (const double target : spec.axes.infection_targets) {
      node_sets.push_back(analyzer.placement_for_target(
          target, spec.axes.placement_max_hts, rng));
    }
    const auto outs = runner.run_node_sets(campaign, node_sets);

    json::Array rows;
    for (std::size_t t = 0; t < outs.size(); ++t) {
      json::Object row;
      row["target"] = json::Value(spec.axes.infection_targets[t]);
      row["infection"] = json::Value(outs[t].infection_measured);
      row["q"] = json::Value(outs[t].q);
      json::Array changes;
      for (const auto& app : outs[t].apps) {
        changes.push_back(json::Value(app.change));
      }
      row["theta_change"] = json::Value(std::move(changes));
      rows.push_back(json::Value(std::move(row)));
    }
    json::Object mix_out;
    mix_out["mix"] = json::Value(mix_name);
    mix_out["apps"] = app_list(campaign);
    mix_out["rows"] = json::Value(std::move(rows));
    mixes_out.push_back(json::Value(std::move(mix_out)));
  }
  json::Object payload;
  payload["mixes"] = json::Value(std::move(mixes_out));
  return json::Value(std::move(payload));
}

/// Sec. V-C. Per-mix stream: Rng(seed + mix index); inside it the legacy
/// draw order is preserved exactly (train placements, then the
/// optimizer's stream seed, then the random-trial placements).
json::Value run_placement_study(const ScenarioSpec& spec,
                                const core::ParallelSweepRunner& runner) {
  json::Array mixes_out;
  for (std::size_t mix_i = 0; mix_i < spec.workload.mixes.size(); ++mix_i) {
    ScenarioSpec study = spec;
    study.system = system_with_size(spec.system, spec.axes.nodes);
    core::CampaignConfig cfg =
        campaign_config(study, spec.workload.mixes[mix_i]);
    core::AttackCampaign campaign(cfg);
    const MeshGeometry geom(study.system.width, study.system.height);
    Rng rng(spec.seed + static_cast<std::uint64_t>(mix_i));

    // Phase 1: sample diverse placements (serially, from one stream) and
    // evaluate them across the pool to record (rho, eta, m, Q).
    std::vector<core::Placement> train;
    train.reserve(static_cast<std::size_t>(spec.axes.train_samples));
    for (int i = 0; i < spec.axes.train_samples; ++i) {
      const int m =
          1 + static_cast<int>(rng.below(
                  static_cast<std::uint64_t>(spec.axes.max_hts)));
      train.push_back(core::candidate_placements(geom, campaign.gm_node(), m,
                                                 1, rng)
                          .front());
    }
    const auto train_outs = runner.run_placements(campaign, train);

    std::vector<core::AttackSample> samples;
    std::vector<double> phi_victims;
    std::vector<double> phi_attackers;
    for (const auto& out : train_outs) {
      core::AttackSample s;
      s.rho = out.geometry.rho;
      s.eta = out.geometry.eta;
      s.m = out.geometry.m;
      for (const auto& app : out.apps) {
        (app.attacker ? s.phi_attackers : s.phi_victims).push_back(app.phi);
      }
      s.q = out.q;
      if (phi_victims.empty()) {
        phi_victims = s.phi_victims;
        phi_attackers = s.phi_attackers;
      }
      samples.push_back(std::move(s));
    }

    // Phase 2: fit Eq. 9 and enumerate (Eq. 10-11) across the pool; the
    // attacker validates the short list in simulation before committing.
    core::AttackEffectModel model;
    model.fit(samples);
    core::PlacementOptimizer optimizer(geom, campaign.gm_node(), &model,
                                       phi_victims, phi_attackers);
    const auto shortlist = optimizer.optimize_top_k(
        spec.axes.max_hts, spec.axes.candidates_per_m, spec.axes.shortlist,
        rng(), runner);
    std::vector<core::Placement> short_placements;
    short_placements.reserve(shortlist.size());
    for (const auto& r : shortlist) short_placements.push_back(r.placement);
    const auto realized = runner.run_placements(campaign, short_placements);
    std::size_t best = 0;
    for (std::size_t c = 1; c < realized.size(); ++c) {
      if (realized[c].q > realized[best].q) best = c;
    }

    std::vector<std::vector<NodeId>> random_sets;
    random_sets.reserve(static_cast<std::size_t>(spec.axes.random_trials));
    for (int t = 0; t < spec.axes.random_trials; ++t) {
      random_sets.push_back(core::random_placement(geom, spec.axes.max_hts,
                                                   rng, campaign.gm_node()));
    }
    double q_random = 0.0;
    for (const auto& out : runner.run_node_sets(campaign, random_sets)) {
      q_random += out.q;
    }
    q_random /= spec.axes.random_trials;

    json::Object row;
    row["mix"] = json::Value(spec.workload.mixes[mix_i]);
    row["q_random"] = json::Value(q_random);
    // Realized Q of the model's top-scored candidate vs the deployed
    // (best-validated) one.
    row["q_model_top"] = json::Value(realized[0].q);
    row["q_deployed"] = json::Value(realized[best].q);
    row["gain"] = json::Value(realized[best].q / q_random - 1.0);
    row["model_r2"] = json::Value(model.r2());
    row["predicted_q"] = json::Value(shortlist[best].predicted_q);
    mixes_out.push_back(json::Value(std::move(row)));
  }
  json::Object payload;
  payload["mixes"] = json::Value(std::move(mixes_out));
  return json::Value(std::move(payload));
}

/// Defense ROC: DefenseSweep curve plus the dense stealthy-Trojan grid
/// (duty-cycle period x modification factor x band x detector kind). The
/// detector grid rides on trace replays; only dynamics cells simulate.
json::Value run_defense_sweep(const ScenarioSpec& spec,
                              const core::ParallelSweepRunner& runner,
                              json::Object& timing) {
  core::DefenseSweepConfig sweep_cfg;
  sweep_cfg.base = campaign_config(spec, spec.workload.mix);
  sweep_cfg.base.detector.reset();
  sweep_cfg.base.response.reset();
  sweep_cfg.responses.assign(spec.axes.responses.begin(),
                             spec.axes.responses.end());
  if (spec.response.has_value()) {
    sweep_cfg.response_base = spec.response->to_config();
  }
  for (const BandSpec& band : spec.axes.bands) {
    power::DetectorConfig d;
    d.low_ratio = band.low;
    d.high_ratio = band.high;
    sweep_cfg.detectors.push_back(d);
  }
  const core::AttackCampaign probe(sweep_cfg.base);
  const MeshGeometry geom(spec.system.width, spec.system.height);
  for (const ClusterSpec& cluster : spec.axes.placements) {
    sweep_cfg.placements.push_back(
        resolve_cluster(cluster, geom, probe.gm_node()));
  }

  const std::uint64_t sims_before_curve =
      core::AttackCampaign::systems_simulated();
  const double t_curve0 = now_seconds();
  const core::DefenseSweep sweep(sweep_cfg);
  const auto curve = sweep.run(runner);
  timing["curve_seconds"] = json::Value(now_seconds() - t_curve0);
  const std::uint64_t curve_sims =
      core::AttackCampaign::systems_simulated() - sims_before_curve;

  json::Object payload;
  {
    json::Object curve_out;
    curve_out["operating_points"] =
        json::Value(static_cast<long long>(sweep_cfg.detectors.size()));
    curve_out["placements"] =
        json::Value(static_cast<long long>(sweep_cfg.placements.size()));
    curve_out["simulations"] =
        json::Value(static_cast<long long>(curve_sims));
    json::Array points;
    for (const auto& pt : curve) {
      json::Object p;
      p["low"] = json::Value(pt.detector.low_ratio);
      p["high"] = json::Value(pt.detector.high_ratio);
      p["detection_rate"] = json::Value(pt.detection_rate);
      p["victim_flag_rate"] = json::Value(pt.victim_flag_rate);
      p["attacker_flag_rate"] = json::Value(pt.attacker_flag_rate);
      p["false_positive_rate"] = json::Value(pt.false_positive_rate);
      p["mean_detection_latency"] = json::Value(pt.mean_detection_latency);
      p["mean_q_plain"] = json::Value(pt.mean_q_plain);
      p["mean_q_guarded"] = json::Value(pt.mean_q_guarded);
      points.push_back(json::Value(std::move(p)));
    }
    curve_out["points"] = json::Value(std::move(points));
    payload["curve"] = json::Value(std::move(curve_out));
  }

  if (!spec.axes.roc.enabled()) return json::Value(std::move(payload));

  // ------------------------------------------------------------------
  // ROC grid. Record one trace per (period, factor, placement) dynamics
  // cell -- plus one clean trace per distinct system timing -- then
  // replay the full detector grid offline.
  // ------------------------------------------------------------------
  const RocSpec& roc = spec.axes.roc;
  const std::vector<power::DetectorConfig> roc_detectors =
      roc_detector_grid(spec);
  const std::vector<std::vector<NodeId>> roc_placements(
      sweep_cfg.placements.begin(),
      sweep_cfg.placements.begin() + roc.placements);

  int monitored = 0;
  for (const auto& app : probe.apps()) {
    monitored += static_cast<int>(app.cores.size());
  }

  const auto roc_config = [&](int period, double factor) {
    core::CampaignConfig cfg = sweep_cfg.base;
    cfg.detector.reset();
    cfg.response.reset();
    cfg.trojan.victim_scale = factor;
    if (period == 0) {
      cfg.trojan.active = true;  // always-on, live from power-on
      cfg.toggle_period_epochs = 0;
      // Let the CONFIG_CMD broadcast finish before the first POWER_REQ:
      // the attack-from-epoch-0 scenario the cohort detector exists for.
      cfg.system.first_epoch_cycle = roc.epoch0_first_epoch_cycle;
    } else {
      cfg.trojan.active = false;  // dormant until the first toggle
      cfg.toggle_period_epochs = period;
    }
    return cfg;
  };

  const std::size_t dyn_count = roc.periods.size() * roc.factors.size();
  const std::size_t rec_count = dyn_count * roc_placements.size();
  const std::uint64_t sims_before_roc =
      core::AttackCampaign::systems_simulated();
  const double t_rec0 = now_seconds();
  const auto traces = runner.map(rec_count, [&](std::size_t i) {
    const std::size_t dyn = i / roc_placements.size();
    const std::size_t p = i % roc_placements.size();
    core::AttackCampaign campaign(
        roc_config(roc.periods[dyn / roc.factors.size()],
                   roc.factors[dyn % roc.factors.size()]));
    return campaign.record_trace(roc_placements[p]);
  });
  // Clean recordings: dormant Trojans mean identical dynamics across
  // factors and duty-cycle periods -- but NOT across system timing, so
  // the period=0 cells (which shift first_epoch_cycle) need their own
  // clean trace for an apples-to-apples detect/fp pair.
  const auto record_clean = [&](Cycle first_epoch_cycle) {
    core::CampaignConfig clean_cfg = sweep_cfg.base;
    clean_cfg.detector.reset();
    clean_cfg.trojan.active = false;
    clean_cfg.toggle_period_epochs = 0;
    clean_cfg.system.first_epoch_cycle = first_epoch_cycle;
    core::AttackCampaign clean_campaign(clean_cfg);
    return clean_campaign.record_trace(roc_placements.front());
  };
  const bool has_period0 = std::find(roc.periods.begin(), roc.periods.end(),
                                     0) != roc.periods.end();
  const power::RequestTrace clean_trace =
      record_clean(sweep_cfg.base.system.first_epoch_cycle);
  const power::RequestTrace clean_trace_epoch0 =
      has_period0 ? record_clean(roc.epoch0_first_epoch_cycle)
                  : power::RequestTrace{};
  timing["record_seconds"] = json::Value(now_seconds() - t_rec0);
  const std::uint64_t roc_sims =
      core::AttackCampaign::systems_simulated() - sims_before_roc;

  // Replay the detector grid over every trace (and the clean traces).
  const double t_rep0 = now_seconds();
  std::vector<double> clean_fp(roc_detectors.size(), 0.0);
  std::vector<double> clean_fp_epoch0(roc_detectors.size(), 0.0);
  for (std::size_t d = 0; d < roc_detectors.size(); ++d) {
    const auto rep = power::replay_detector(clean_trace, roc_detectors[d]);
    clean_fp[d] = static_cast<double>(rep.unique_flagged()) / monitored;
    if (has_period0) {
      const auto rep0 =
          power::replay_detector(clean_trace_epoch0, roc_detectors[d]);
      clean_fp_epoch0[d] =
          static_cast<double>(rep0.unique_flagged()) / monitored;
    }
  }
  std::size_t replays = roc_detectors.size() * (has_period0 ? 2 : 1);
  json::Array roc_points;
  for (std::size_t dyn = 0; dyn < dyn_count; ++dyn) {
    for (std::size_t d = 0; d < roc_detectors.size(); ++d) {
      const int period = roc.periods[dyn / roc.factors.size()];
      const double factor = roc.factors[dyn % roc.factors.size()];
      double detect = 0.0;
      double latency_sum = 0.0;
      int latency_n = 0;
      for (std::size_t p = 0; p < roc_placements.size(); ++p) {
        const auto rep = power::replay_detector(
            traces[dyn * roc_placements.size() + p], roc_detectors[d]);
        ++replays;
        detect += static_cast<double>(rep.unique_flagged()) / monitored;
        if (rep.first_flag_epoch >= 0) {
          latency_sum += rep.first_flag_epoch;
          ++latency_n;
        }
      }
      detect /= static_cast<double>(roc_placements.size());
      json::Object pt;
      pt["period"] = json::Value(period);
      pt["factor"] = json::Value(factor);
      pt["kind"] = json::Value(to_string(roc_detectors[d].kind));
      pt["lo"] = json::Value(roc_detectors[d].low_ratio);
      pt["hi"] = json::Value(roc_detectors[d].high_ratio);
      pt["detect"] = json::Value(detect);
      pt["fp"] = json::Value(period == 0 ? clean_fp_epoch0[d] : clean_fp[d]);
      pt["latency"] = json::Value(
          latency_n > 0 ? latency_sum / latency_n : -1.0);
      roc_points.push_back(json::Value(std::move(pt)));
    }
  }
  timing["replay_seconds"] = json::Value(now_seconds() - t_rep0);

  json::Object roc_out;
  roc_out["dynamics_cells"] = json::Value(static_cast<long long>(dyn_count));
  roc_out["placements"] =
      json::Value(static_cast<long long>(roc_placements.size()));
  roc_out["detector_grid"] =
      json::Value(static_cast<long long>(roc_detectors.size()));
  roc_out["simulations"] = json::Value(static_cast<long long>(roc_sims));
  roc_out["replays"] = json::Value(static_cast<long long>(replays));
  roc_out["points"] = json::Value(std::move(roc_points));
  payload["roc"] = json::Value(std::move(roc_out));
  return json::Value(std::move(payload));
}

/// Detection & mitigation arms per mix (the defense-evaluation bench).
/// The detection/clean arms use the spec's trojan schedule (mid-run
/// activation) and axes.detection_measure_epochs; the damage arms pin
/// the Trojan always-on so plain and guarded Q are directly comparable.
json::Value run_defense_evaluation(const ScenarioSpec& spec) {
  json::Array rows;
  for (const std::string& mix_name : spec.workload.mixes) {
    // Detection arm (mid-run activation); the run owns its detector.
    ScenarioSpec detect_spec = spec;
    detect_spec.epochs.measure = spec.axes.detection_measure_epochs;
    if (!detect_spec.detector.has_value()) {
      detect_spec.detector = DetectorSpec{};
    }
    core::CampaignConfig cfg = campaign_config(detect_spec, mix_name);
    core::AttackCampaign campaign(cfg);
    const MeshGeometry geom(spec.system.width, spec.system.height);
    const auto hts =
        resolve_cluster(ClusterSpec{ClusterSpec::At::kGm,
                                    spec.axes.cluster_hts},
                        geom, campaign.gm_node());
    const auto detected = campaign.run(hts);
    const power::DetectorReport report =
        detected.detection.value_or(power::DetectorReport{});

    // Damage arms: attack always on, no detector (and so no response).
    ScenarioSpec damage_spec = spec;
    damage_spec.trojan.active = true;
    damage_spec.trojan.toggle_period_epochs = 0;
    damage_spec.detector.reset();
    damage_spec.response.reset();
    core::AttackCampaign plain_campaign(
        campaign_config(damage_spec, mix_name));
    const auto plain = plain_campaign.run(hts);

    int victims = 0;
    int attackers = 0;
    for (const auto& app : campaign.apps()) {
      (app.is_attacker() ? attackers : victims) +=
          static_cast<int>(app.cores.size());
    }

    // False positives: same chip, Trojans never activated (detection-only
    // run; the clean arm has no use for a baseline). Forced dormant: the
    // arm must stay clean even for a spec whose trojan starts active.
    ScenarioSpec clean_spec = detect_spec;
    clean_spec.trojan.active = false;
    clean_spec.trojan.toggle_period_epochs = 0;
    core::AttackCampaign clean(campaign_config(clean_spec, mix_name));
    const auto clean_report =
        clean.run_detection_only(hts).value_or(power::DetectorReport{});
    const auto false_pos =
        clean_report.flagged_low.size() + clean_report.flagged_high.size();

    // Mitigation arm: the GuardedBudgeter clamps requests in-band.
    ScenarioSpec guard_spec = damage_spec;
    guard_spec.system.guard_requests = true;
    core::AttackCampaign guarded(campaign_config(guard_spec, mix_name));
    const auto mitigated = guarded.run(hts);
    double worst = 1.0;
    for (const auto& app : mitigated.apps) {
      if (!app.attacker) worst = std::min(worst, app.change);
    }

    json::Object row;
    row["mix"] = json::Value(mix_name);
    row["q_plain"] = json::Value(plain.q);
    row["q_guarded"] = json::Value(mitigated.q);
    row["victims_flagged"] =
        json::Value(static_cast<long long>(report.flagged_low.size()));
    row["victim_cores"] = json::Value(victims);
    row["attackers_flagged"] =
        json::Value(static_cast<long long>(report.flagged_high.size()));
    row["attacker_cores"] = json::Value(attackers);
    row["false_positives"] = json::Value(static_cast<long long>(false_pos));
    row["worst_victim_theta"] = json::Value(worst);
    rows.push_back(json::Value(std::move(row)));
  }
  json::Object payload;
  payload["rows"] = json::Value(std::move(rows));
  return json::Value(std::move(payload));
}

/// False-data vs flooding on damage and detectability, plus the
/// duty-cycle stealth/damage dial. Flooder i at source node `src` draws
/// from Rng(seed + src) -- the legacy constant 7 reproduces the bench.
json::Value run_attack_comparison(const ScenarioSpec& spec,
                                  const core::ParallelSweepRunner& runner) {
  const workload::Mix& mix = mix_by_name(spec.workload.mix);
  system::SystemConfig sys_cfg = spec.system.to_system_config();
  int threads = spec.workload.threads_per_app;
  if (threads <= 0) threads = sys_cfg.node_count() / mix.app_count();
  auto apps = workload::instantiate_mix(mix, threads);
  workload::map_threads_round_robin(apps, sys_cfg.node_count());

  const auto victim_throughput = [&](system::ManyCoreSystem& sys) {
    double sum = 0.0;
    for (const auto& app : apps) {
      if (!app.is_attacker()) sum += sys.app_throughput(app.id);
    }
    return sum;
  };

  // ---- arm 1: clean reference ----------------------------------------
  double victim_theta_clean = 0.0;
  std::uint64_t gm_flits_clean = 0;
  {
    system::ManyCoreSystem sys(sys_cfg, apps);
    sys.run_epochs(spec.epochs.warmup);
    sys.reset_measurement();
    sys.run_epochs(spec.epochs.measure);
    victim_theta_clean = victim_throughput(sys);
    gm_flits_clean =
        sys.network().router(sys.gm_node()).stats().flits_forwarded;
  }

  // ---- arm 2: the paper's false-data attack ---------------------------
  core::AttackCampaign campaign(campaign_config(spec, spec.workload.mix));
  const MeshGeometry geom(spec.system.width, spec.system.height);
  const auto hts =
      resolve_cluster(ClusterSpec{ClusterSpec::At::kGm,
                                  spec.axes.cluster_hts},
                      geom, campaign.gm_node());
  const auto fd = campaign.run(hts);
  double victim_theta_fd = 0.0;
  for (const auto& app : fd.apps) {
    if (!app.attacker) victim_theta_fd += app.theta_attacked;
  }

  // ---- arm 3: flooding DoS against the manager ------------------------
  double victim_theta_flood = 0.0;
  std::uint64_t gm_flits_flood = 0;
  std::uint64_t flood_packets = 0;
  {
    system::ManyCoreSystem sys(sys_cfg, apps);
    std::vector<std::unique_ptr<core::FloodingAttacker>> flooders;
    for (const NodeId src : spec.axes.flood_sources) {
      flooders.push_back(std::make_unique<core::FloodingAttacker>(
          &sys.network(), src, sys.gm_node(), spec.axes.flood_rate,
          spec.seed + src));
      sys.engine().add_tickable(flooders.back().get());
    }
    sys.run_epochs(spec.epochs.warmup);
    sys.reset_measurement();
    sys.run_epochs(spec.epochs.measure);
    victim_theta_flood = victim_throughput(sys);
    gm_flits_flood =
        sys.network().router(sys.gm_node()).stats().flits_forwarded;
    for (const auto& f : flooders) flood_packets += f->packets_injected();
  }

  // ---- arm 4: duty-cycled activation sweep ----------------------------
  // Independent campaigns fanned across the pool (each task owns its
  // campaign, so results are identical at any thread count).
  const auto duty_outs =
      runner.map(spec.axes.toggle_periods.size(), [&](std::size_t i) {
        ScenarioSpec duty_spec = spec;
        duty_spec.epochs.warmup = spec.axes.duty_warmup_epochs;
        duty_spec.epochs.measure = spec.axes.duty_measure_epochs;
        duty_spec.trojan.toggle_period_epochs = spec.axes.toggle_periods[i];
        core::AttackCampaign duty(
            campaign_config(duty_spec, spec.workload.mix));
        const auto out = duty.run(hts);
        return std::pair<double, double>(out.infection_measured, out.q);
      });

  json::Object payload;
  {
    json::Object clean;
    clean["victim_throughput"] = json::Value(victim_theta_clean);
    clean["extra_packets"] = json::Value(0);
    clean["gm_flits"] = json::Value(static_cast<long long>(gm_flits_clean));
    payload["clean"] = json::Value(std::move(clean));

    json::Object false_data;
    false_data["victim_throughput"] = json::Value(victim_theta_fd);
    false_data["extra_packets"] = json::Value(0);
    // The Trojan rewrites payloads in flight: utilization counters are
    // identical to the clean run -- the stealth headline.
    false_data["gm_flits"] =
        json::Value(static_cast<long long>(gm_flits_clean));
    false_data["q"] = json::Value(fd.q);
    payload["false_data"] = json::Value(std::move(false_data));

    json::Object flooding;
    flooding["victim_throughput"] = json::Value(victim_theta_flood);
    flooding["extra_packets"] =
        json::Value(static_cast<long long>(flood_packets));
    flooding["gm_flits"] =
        json::Value(static_cast<long long>(gm_flits_flood));
    payload["flooding"] = json::Value(std::move(flooding));
  }
  json::Array duty;
  for (std::size_t i = 0; i < spec.axes.toggle_periods.size(); ++i) {
    json::Object row;
    row["period"] = json::Value(spec.axes.toggle_periods[i]);
    row["infection"] = json::Value(duty_outs[i].first);
    row["q"] = json::Value(duty_outs[i].second);
    duty.push_back(json::Value(std::move(row)));
  }
  payload["duty_cycle"] = json::Value(std::move(duty));
  return json::Value(std::move(payload));
}

/// The same mix-1 attack under every implemented allocation policy.
json::Value run_budgeter_ablation(const ScenarioSpec& spec) {
  json::Array rows;
  for (const power::BudgeterKind kind : spec.axes.budgeters) {
    ScenarioSpec arm = spec;
    arm.system.budgeter = kind;
    core::AttackCampaign campaign(campaign_config(arm, spec.workload.mix));
    const MeshGeometry geom(spec.system.width, spec.system.height);
    const auto hts =
        resolve_cluster(ClusterSpec{ClusterSpec::At::kGm,
                                    spec.axes.cluster_hts},
                        geom, campaign.gm_node());
    const auto out = campaign.run(hts);
    double worst_victim = 1e9;
    double best_attacker = 0.0;
    for (const auto& app : out.apps) {
      if (app.attacker) {
        best_attacker = std::max(best_attacker, app.change);
      } else {
        worst_victim = std::min(worst_victim, app.change);
      }
    }
    json::Object row;
    row["budgeter"] = json::Value(power::to_string(kind));
    row["q"] = json::Value(out.q);
    row["infection"] = json::Value(out.infection_measured);
    row["worst_victim"] = json::Value(worst_victim);
    row["best_attacker"] = json::Value(best_attacker);
    rows.push_back(json::Value(std::move(row)));
  }
  json::Object payload;
  payload["rows"] = json::Value(std::move(rows));
  return json::Value(std::move(payload));
}

/// Closed-loop defense tradeoff grid: placements x {static, adaptive}
/// Trojan x {none + axes.responses} response policy. Every arm is an
/// independent re-simulation (responses perturb the dynamics, so nothing
/// here can ride on trace replays); arms fan out across the pool. The
/// static and adaptive arms are tuned to equal mean duty cycle
/// (toggle_period_epochs vs max_on/hold_off), so the duty_comparison
/// block isolates what grant-feedback adaptation buys the attacker.
json::Value run_defense_closed_loop(const ScenarioSpec& spec,
                                    const core::ParallelSweepRunner& runner) {
  struct Arm {
    std::size_t placement = 0;
    bool adaptive = false;
    int response = -1;  // -1 = no response policy, else axes.responses index
  };

  const core::AttackCampaign probe(campaign_config(spec, spec.workload.mix));
  const MeshGeometry geom(spec.system.width, spec.system.height);
  std::vector<std::vector<NodeId>> placements;
  for (const ClusterSpec& cluster : spec.axes.placements) {
    placements.push_back(resolve_cluster(cluster, geom, probe.gm_node()));
  }
  int attacker_cores = 0;
  for (const auto& app : probe.apps()) {
    if (app.is_attacker()) attacker_cores += static_cast<int>(app.cores.size());
  }

  std::vector<Arm> arms;
  for (std::size_t p = 0; p < placements.size(); ++p) {
    for (const bool adaptive : {false, true}) {
      for (int r = -1; r < static_cast<int>(spec.axes.responses.size()); ++r) {
        arms.push_back(Arm{p, adaptive, r});
      }
    }
  }

  const auto outs = runner.map(arms.size(), [&](std::size_t i) {
    const Arm& arm = arms[i];
    core::CampaignConfig cfg = campaign_config(spec, spec.workload.mix);
    if (arm.adaptive) {
      // Grant-feedback duty cycling replaces the open-loop toggle; the
      // Trojans start live, the agent decides epoch by epoch.
      cfg.trojan.active = true;
      cfg.toggle_period_epochs = 0;
      cfg.trojan.adapt.enabled = true;
    } else {
      cfg.trojan.adapt.enabled = false;
    }
    if (arm.response < 0) {
      cfg.response.reset();
    } else {
      cfg.response->kind =
          spec.axes.responses[static_cast<std::size_t>(arm.response)];
    }
    core::AttackCampaign campaign(cfg);
    return campaign.run(placements[arm.placement]);
  });

  const auto detection_rate = [&](const core::CampaignOutcome& out) {
    if (!out.detection.has_value() || attacker_cores == 0) return 0.0;
    // Capped at 1: a migration re-flags attackers at their new positions,
    // so the cumulative distinct-node count can exceed the physical cores.
    return std::min(1.0,
                    static_cast<double>(out.detection->flagged_high.size()) /
                        static_cast<double>(attacker_cores));
  };

  json::Array rows;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& arm = arms[i];
    const core::CampaignOutcome& out = outs[i];
    json::Object row;
    row["placement"] =
        json::Value(to_string(spec.axes.placements[arm.placement].at));
    row["trojan"] = json::Value(arm.adaptive ? "adaptive" : "static");
    row["response"] = json::Value(
        arm.response < 0
            ? "none"
            : power::to_string(
                  spec.axes.responses[static_cast<std::size_t>(arm.response)]));
    row["q"] = json::Value(out.q);
    row["infection"] = json::Value(out.infection_measured);
    const power::DetectorReport rep =
        out.detection.value_or(power::DetectorReport{});
    row["attackers_flagged"] =
        json::Value(static_cast<long long>(rep.flagged_high.size()));
    row["victims_flagged"] =
        json::Value(static_cast<long long>(rep.flagged_low.size()));
    row["detection_rate"] = json::Value(detection_rate(out));
    row["first_flag_epoch"] = json::Value(rep.first_flag_epoch);
    if (out.adaptation.has_value()) {
      row["duty"] = json::Value(out.adaptation->duty());
      row["backoffs"] = json::Value(out.adaptation->backoffs);
    }
    if (out.response.has_value()) {
      const core::ResponseOutcome& ro = *out.response;
      row["sanctioned_cores"] =
          json::Value(static_cast<long long>(ro.sanctioned_cores.size()));
      row["collateral"] = json::Value(ro.collateral);
      row["sanction_core_epochs"] =
          json::Value(static_cast<long long>(ro.sanction_core_epochs));
      row["denied_requests"] =
          json::Value(static_cast<long long>(ro.denied_requests));
      row["clamped_requests"] =
          json::Value(static_cast<long long>(ro.clamped_requests));
      row["first_sanction_epoch"] = json::Value(ro.first_sanction_epoch);
      row["epochs_to_recovery"] = json::Value(ro.epochs_to_recovery);
      row["victim_grant_recovery"] = json::Value(ro.victim_grant_recovery);
      row["migrations"] = json::Value(ro.migrations);
    }
    rows.push_back(json::Value(std::move(row)));
  }

  // Evasion headline: the response-free arms of the first placement,
  // static (toggle, duty 1/2) vs adaptive (max_on/hold_off, equal duty).
  json::Object comparison;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    if (arms[i].placement != 0 || arms[i].response >= 0) continue;
    const char* side = arms[i].adaptive ? "adaptive" : "static";
    json::Object half;
    half["detection_rate"] = json::Value(detection_rate(outs[i]));
    half["q"] = json::Value(outs[i].q);
    half["duty"] = json::Value(
        outs[i].adaptation.has_value() ? outs[i].adaptation->duty() : 0.5);
    comparison[side] = json::Value(std::move(half));
  }

  json::Object payload;
  payload["attacker_cores"] = json::Value(attacker_cores);
  payload["arms"] = json::Value(std::move(rows));
  payload["duty_comparison"] = json::Value(std::move(comparison));
  return json::Value(std::move(payload));
}

/// Table I: the implemented configuration plus a zero-load latency check
/// of the NoC timing parameters on the wire.
json::Value run_config_report(const ScenarioSpec& spec) {
  const system::SystemConfig cfg = spec.system.to_system_config();
  json::Object params;
  params["nodes"] = json::Value(cfg.node_count());
  params["width"] = json::Value(cfg.width);
  params["height"] = json::Value(cfg.height);
  params["l1_sets"] = json::Value(static_cast<long long>(cfg.l1.sets));
  params["l1_ways"] = json::Value(cfg.l1.ways);
  params["l1_mshrs"] = json::Value(cfg.l1.mshrs);
  params["l2_sets"] = json::Value(static_cast<long long>(cfg.l2.sets));
  params["l2_ways"] = json::Value(cfg.l2.ways);
  params["mem_latency"] =
      json::Value(static_cast<long long>(cfg.l2.mem_latency));
  params["data_packet_flits"] = json::Value(cfg.noc.data_packet_flits);
  params["meta_packet_flits"] = json::Value(cfg.noc.meta_packet_flits);
  params["router_latency"] = json::Value(cfg.noc.router_latency);
  params["link_latency"] = json::Value(cfg.noc.link_latency);
  params["vcs"] = json::Value(cfg.noc.vcs);
  params["vc_depth"] = json::Value(cfg.noc.vc_depth);

  // Verify Table I's timing on the wire: one-hop zero-load latency of a
  // 1-flit packet must equal (hops+1)*(router+link) + link.
  sim::Engine engine;
  MeshGeometry geom(2, 1);
  noc::MeshNetwork net(engine, geom, cfg.noc);
  Cycle measured = 0;
  net.set_handler(1, [&](const noc::Packet& p) {
    measured = p.delivered - p.birth;
  });
  net.send(net.make_packet(0, 1, noc::PacketType::kMemReadReq));
  engine.run_cycles(30);
  const Cycle expected = static_cast<Cycle>(
      2 * (cfg.noc.router_latency + cfg.noc.link_latency) +
      cfg.noc.link_latency);

  json::Object latency;
  latency["measured"] = json::Value(static_cast<long long>(measured));
  latency["analytic"] = json::Value(static_cast<long long>(expected));
  latency["match"] = json::Value(measured == expected);

  json::Object payload;
  payload["parameters"] = json::Value(std::move(params));
  payload["zero_load_latency"] = json::Value(std::move(latency));
  return json::Value(std::move(payload));
}

/// Tables II-III: the benchmark roster and mixes, plus each benchmark's
/// measured power sensitivity Phi (Def. 5) on a quiet chip.
json::Value run_benchmark_report(const ScenarioSpec& spec) {
  json::Array roster;
  for (const auto& b : workload::benchmark_table()) {
    json::Object row;
    row["name"] = json::Value(b.name);
    row["suite"] = json::Value(b.suite);
    row["cpi_base"] = json::Value(b.cpi_base);
    row["apki"] = json::Value(b.apki);
    row["working_set_lines"] =
        json::Value(static_cast<long long>(b.working_set_lines));
    row["shared_fraction"] = json::Value(b.shared_fraction);
    row["write_fraction"] = json::Value(b.write_fraction);
    roster.push_back(json::Value(std::move(row)));
  }

  json::Array mixes;
  for (const auto& mix : workload::standard_mixes()) {
    json::Object row;
    row["name"] = json::Value(mix.name);
    json::Array attackers;
    for (const auto& a : mix.attackers) attackers.push_back(json::Value(a));
    json::Array victims;
    for (const auto& v : mix.victims) victims.push_back(json::Value(v));
    row["attackers"] = json::Value(std::move(attackers));
    row["victims"] = json::Value(std::move(victims));
    mixes.push_back(json::Value(std::move(row)));
  }

  // Measured Phi: one benchmark at a time on a quiet chip, uniform
  // placement, `epochs.measure` epochs.
  const SystemSpec sys_spec = system_with_size(spec.system, spec.axes.nodes);
  json::Array phi;
  for (const auto& profile : workload::benchmark_table()) {
    workload::Mix solo;
    solo.name = profile.name;
    solo.victims = {profile.name};
    auto apps = workload::instantiate_mix(solo, spec.axes.nodes);
    workload::map_threads_round_robin(apps, spec.axes.nodes);
    system::ManyCoreSystem sys(sys_spec.to_system_config(), apps);
    sys.run_epochs(spec.epochs.measure);
    json::Object row;
    row["name"] = json::Value(profile.name);
    row["phi"] = json::Value(sys.app_sensitivity(0));
    phi.push_back(json::Value(std::move(row)));
  }

  json::Object payload;
  payload["benchmarks"] = json::Value(std::move(roster));
  payload["mixes"] = json::Value(std::move(mixes));
  payload["phi"] = json::Value(std::move(phi));
  return json::Value(std::move(payload));
}

/// Sec. III-D: every derived stealth number from the synthesis constants.
json::Value run_area_power_report(const ScenarioSpec& spec) {
  const core::HtAreaPowerModel m;
  json::Object model;
  model["ht_area_um2"] = json::Value(m.ht_area_um2);
  model["ht_power_uw"] = json::Value(m.ht_power_uw);
  model["router_area_um2"] = json::Value(m.router.area_um2);
  model["router_power_uw"] = json::Value(m.router.power_uw);
  model["area_fraction_of_router"] = json::Value(m.area_fraction_of_router());
  model["power_fraction_of_router"] =
      json::Value(m.power_fraction_of_router());

  json::Array scaling;
  for (const int hts : spec.axes.ht_counts) {
    json::Object row;
    row["hts"] = json::Value(hts);
    row["total_area_um2"] = json::Value(m.total_area_um2(hts));
    row["total_power_uw"] = json::Value(m.total_power_uw(hts));
    row["area_fraction_of_chip"] =
        json::Value(m.area_fraction_of_chip(hts, spec.axes.nodes));
    row["power_fraction_of_chip"] =
        json::Value(m.power_fraction_of_chip(hts, spec.axes.nodes));
    scaling.push_back(json::Value(std::move(row)));
  }

  json::Object payload;
  payload["chip_nodes"] = json::Value(spec.axes.nodes);
  payload["model"] = json::Value(std::move(model));
  payload["scaling"] = json::Value(std::move(scaling));
  return json::Value(std::move(payload));
}

}  // namespace

ScenarioSpec resolve(const ScenarioSpec& spec, const RunOptions& opts) {
  ScenarioSpec resolved = opts.quick ? spec.with_quick() : spec;
  if (opts.seed.has_value()) {
    resolved.seed = *opts.seed;
    resolved.system.seed = *opts.seed;
  }
  if (opts.threads > 0) resolved.threads = opts.threads;
  if (!opts.checkpoint_dir.empty()) {
    resolved.checkpoint_dir = opts.checkpoint_dir;
  }
  resolved.validate();
  return resolved;
}

json::Value run_scenario(const ScenarioSpec& spec, const RunOptions& opts) {
  const ScenarioSpec s = resolve(spec, opts);
  const core::ParallelSweepRunner runner(s.threads);

  json::Object envelope;
  envelope["scenario"] = json::Value(s.name);
  envelope["kind"] = json::Value(to_string(s.kind));
  envelope["quick"] = json::Value(opts.quick);
  envelope["seed"] = json::Value(static_cast<long long>(s.seed));
  envelope["threads"] = json::Value(runner.threads());

  json::Object timing;
  const double t0 = now_seconds();
  json::Value payload;
  switch (s.kind) {
    case ScenarioKind::kInfectionVsHtCount:
      payload = run_infection_vs_ht_count(s);
      break;
    case ScenarioKind::kInfectionVsDistribution:
      payload = run_infection_vs_distribution(s);
      break;
    case ScenarioKind::kAttackEffect:
    case ScenarioKind::kPerformanceChange:
      payload = run_attack_sweep(s, runner);
      break;
    case ScenarioKind::kPlacementStudy:
      payload = run_placement_study(s, runner);
      break;
    case ScenarioKind::kDefenseSweep:
      payload = run_defense_sweep(s, runner, timing);
      break;
    case ScenarioKind::kDefenseEvaluation:
      payload = run_defense_evaluation(s);
      break;
    case ScenarioKind::kAttackComparison:
      payload = run_attack_comparison(s, runner);
      break;
    case ScenarioKind::kBudgeterAblation:
      payload = run_budgeter_ablation(s);
      break;
    case ScenarioKind::kConfigReport:
      payload = run_config_report(s);
      break;
    case ScenarioKind::kBenchmarkReport:
      payload = run_benchmark_report(s);
      break;
    case ScenarioKind::kAreaPowerReport:
      payload = run_area_power_report(s);
      break;
    case ScenarioKind::kDefenseClosedLoop:
      payload = run_defense_closed_loop(s, runner);
      break;
  }
  timing["seconds"] = json::Value(now_seconds() - t0);

  for (auto& [key, value] : payload.as_object()) {
    envelope[key] = std::move(value);
  }
  envelope["timing"] = json::Value(std::move(timing));
  return json::Value(std::move(envelope));
}

power::RequestTrace record_scenario_trace(const ScenarioSpec& spec,
                                          const RunOptions& opts) {
  const ScenarioSpec s = resolve(spec, opts);
  const std::string mix_name =
      !s.workload.mixes.empty() ? s.workload.mixes.front() : s.workload.mix;
  core::CampaignConfig cfg = campaign_config(s, mix_name);
  cfg.detector.reset();  // recording is detector-free by construction
  cfg.response.reset();  // ... and responses perturb what they'd record
  core::AttackCampaign campaign(cfg);
  const MeshGeometry geom(s.system.width, s.system.height);
  const ClusterSpec cluster = s.axes.placements.empty()
                                  ? ClusterSpec{ClusterSpec::At::kGm,
                                                s.axes.cluster_hts}
                                  : s.axes.placements.front();
  const auto placement = resolve_cluster(cluster, geom, campaign.gm_node());
  return campaign.record_trace(placement);
}

json::Value replay_scenario_detectors(const ScenarioSpec& spec,
                                      const power::RequestTrace& trace,
                                      const RunOptions& opts) {
  const ScenarioSpec s = resolve(spec, opts);
  // A trace is only meaningful against the chip it was recorded on: a
  // detector replayed into the wrong geometry would file confident
  // nonsense. Refuse loudly instead.
  const int spec_nodes = s.system.width * s.system.height;
  if (trace.node_count != spec_nodes) {
    throw std::runtime_error(
        "trace/scenario mismatch: trace was recorded on " +
        std::to_string(trace.node_count) + " nodes but scenario \"" + s.name +
        "\" builds " + std::to_string(spec_nodes));
  }
  if (trace.epoch_cycles != s.system.epoch_cycles) {
    throw std::runtime_error(
        "trace/scenario mismatch: trace epoch_cycles " +
        std::to_string(trace.epoch_cycles) + " vs scenario \"" + s.name +
        "\" epoch_cycles " + std::to_string(s.system.epoch_cycles));
  }
  std::vector<power::DetectorConfig> detectors;
  if (s.detector.has_value()) detectors.push_back(s.detector->to_config());
  const std::vector<power::DetectorConfig> grid = roc_detector_grid(s);
  detectors.insert(detectors.end(), grid.begin(), grid.end());
  if (detectors.empty()) detectors.push_back(power::DetectorConfig{});

  json::Array reports;
  for (const power::DetectorConfig& d : detectors) {
    const power::DetectorReport rep = power::replay_detector(trace, d);
    json::Object row;
    row["kind"] = json::Value(to_string(d.kind));
    row["low"] = json::Value(d.low_ratio);
    row["high"] = json::Value(d.high_ratio);
    row["unique_flagged"] =
        json::Value(static_cast<long long>(rep.unique_flagged()));
    json::Array low_nodes;
    for (const NodeId n : rep.flagged_low) {
      low_nodes.push_back(json::Value(static_cast<long long>(n)));
    }
    json::Array high_nodes;
    for (const NodeId n : rep.flagged_high) {
      high_nodes.push_back(json::Value(static_cast<long long>(n)));
    }
    row["flagged_low"] = json::Value(std::move(low_nodes));
    row["flagged_high"] = json::Value(std::move(high_nodes));
    row["first_flag_epoch"] = json::Value(rep.first_flag_epoch);
    row["epochs_observed"] =
        json::Value(static_cast<long long>(rep.epochs_observed));
    reports.push_back(json::Value(std::move(row)));
  }
  json::Object payload;
  payload["scenario"] = json::Value(s.name);
  payload["epochs"] = json::Value(static_cast<long long>(trace.size()));
  payload["node_count"] = json::Value(trace.node_count);
  payload["reports"] = json::Value(std::move(reports));
  return json::Value(std::move(payload));
}

}  // namespace htpb::scenario
