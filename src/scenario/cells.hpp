// Campaign cell expansion for the fleet service: slice a resolved
// ScenarioSpec along its outermost *independent* sweep axis into
// self-contained single-slice specs, and reassemble the slice results
// into the exact tree run_scenario would have produced in one process.
//
// The split axis per kind follows the runner's stochastic contract
// (scenario/runner.cpp documents each): only axes whose RNG streams are
// value-keyed -- or re-keyable by rebasing the cell's seed -- are split,
// so `merge_cell_results` over the cells is bit-identical (minus the
// "timing" object) to a single `run_scenario` of the full spec.
//
//   kInfectionVsHtCount       cell per (arm, ht)   Rng(seed + s*77 + ht)
//   kInfectionVsDistribution  cell per (div, size) Rng(seed + s*13 + size)
//   kAttackEffect             cell per mix         serial Rng(seed) per mix
//   kPerformanceChange        cell per mix         (same sweep)
//   kPlacementStudy           cell per mix         Rng(seed + mix_i): the
//                             cell's seed is REBASED to seed + mix_i so
//                             its local index 0 lands on the same stream
//   kDefenseEvaluation        cell per mix
//   kBudgeterAblation         cell per budgeter
//   kDefenseClosedLoop        cell per placement (the adaptive and
//                             response axes are runner-internal)
//   everything else           one cell (kDefenseSweep's record-once/
//                             replay-many trace reuse and its
//                             systems_simulated counters, and
//                             kAttackComparison's shared clean-arm state,
//                             are not shardable without changing output)
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "scenario/spec.hpp"

namespace htpb::scenario {

/// One fleet cell: a stable id (embeds the cell index, so ids are unique
/// and order-preserving) and the self-contained spec for that slice.
struct CellPlan {
  std::string id;
  ScenarioSpec spec;
};

/// Expands `resolved` (post-with_quick, post-overrides, validated) into
/// its cell list. Every cell spec validates and carries no quick overlay.
/// Single-cell kinds return one cell holding the spec verbatim.
[[nodiscard]] std::vector<CellPlan> expand_cells(const ScenarioSpec& resolved);

/// Reassembles cell results (the `htpb_run --json` envelopes, in
/// expand_cells order) into the single-run envelope: scenario, kind,
/// quick, seed, threads, then the merged payload. No "timing" member --
/// the caller appends its own. Failed cells are passed as null and their
/// slices are skipped, so the merge degrades gracefully instead of
/// throwing; a size mismatch with expand_cells(resolved) throws.
[[nodiscard]] json::Value merge_cell_results(
    const ScenarioSpec& resolved, bool quick, int threads,
    const std::vector<json::Value>& cell_results);

}  // namespace htpb::scenario
