// Executes a ScenarioSpec through the experiment layer (AttackCampaign,
// DefenseSweep, PlacementOptimizer, ManyCoreSystem) and reduces the raw
// outcomes to one JSON result tree per scenario kind.
//
// Determinism contract: for a fixed (spec, options) pair the returned
// tree is bit-identical across runs and thread counts, except for the
// "timing" object (wall-clock seconds) -- consumers that compare results
// null that key out first. Every stochastic choice derives from
// spec.seed (plus loop indices) exactly the way the legacy bench mains
// derived theirs from their hard-coded constants, so a registry scenario
// reproduces its pre-registry bench bit for bit
// (tests/scenario/runner_test.cpp locks fig3 and defense-roc).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/json.hpp"
#include "power/request_trace.hpp"
#include "scenario/spec.hpp"

namespace htpb::scenario {

struct RunOptions {
  /// Apply the spec's quick overlay (the benches' HTPB_QUICK trims).
  bool quick = false;
  /// Overrides spec.threads when > 0 (0 = spec, then HTPB_THREADS/cores).
  int threads = 0;
  /// Overrides BOTH spec.seed and spec.system.seed: one knob reseeds the
  /// whole experiment (placements and per-node workload streams alike).
  std::optional<std::uint64_t> seed;
  /// Directory where campaign warmup checkpoints are persisted and
  /// reused across runs (htpb_run --checkpoint-dir). Empty = in-memory
  /// warmup forking only. Results are bit-identical either way; the
  /// directory only converts warmup simulation into a file load.
  std::string checkpoint_dir;
};

/// The spec with options folded in (quick overlay applied, seed/thread
/// overrides written through); what run_scenario actually executes.
[[nodiscard]] ScenarioSpec resolve(const ScenarioSpec& spec,
                                   const RunOptions& opts);

/// Runs the scenario and returns its result tree:
///   { "scenario": <name>, "kind": <kind>, "quick": <bool>,
///     "seed": <seed>, "threads": <pool size>,
///     ...kind-specific payload..., "timing": {...seconds...} }
/// Throws on an invalid spec.
[[nodiscard]] json::Value run_scenario(const ScenarioSpec& spec,
                                       const RunOptions& opts = {});

/// The scenario's canonical attacked campaign for trace tooling: the
/// spec's system/workload/trojan/epoch sections (first mix when several
/// are swept, detector detached) against its first declared placement
/// (axes.placements.front(), else a GM-adjacent cluster of
/// axes.cluster_hts Trojans). `htpb_run --record-trace` simulates it once
/// and RequestTrace::save()s the stream.
[[nodiscard]] power::RequestTrace record_scenario_trace(
    const ScenarioSpec& spec, const RunOptions& opts = {});

/// Replays a recorded (or load()ed) trace through the spec's detector
/// grid -- spec.detector when set, plus axes.bands x {ewma, cohort} --
/// with zero simulation: the ROADMAP's iterate-on-detectors-from-files
/// loop. Returns one report summary per operating point.
[[nodiscard]] json::Value replay_scenario_detectors(
    const ScenarioSpec& spec, const power::RequestTrace& trace,
    const RunOptions& opts = {});

}  // namespace htpb::scenario
