// The checked-in scenario registry: every paper experiment (Figs. 3-6,
// Tables I-III, Sec. III-D, Sec. V-C) and the defense extensions, each as
// a named, serializable ScenarioSpec. `htpb_run --scenario <name>` and
// the thin bench formatters both start here; `htpb_run --list` prints it.
//
// Registered names (tests/scenario/registry_test.cpp asserts the set):
//   fig3, fig4, fig5, fig6, table1, table2, secIIID-area-power,
//   secVC-placement, defense-roc, defense-evaluation, attack-comparison,
//   budgeter-ablation
#pragma once

#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace htpb::scenario {

/// All registered scenarios, in presentation order. Built once, validated
/// at construction (a spec that fails validate() is a bug, caught by the
/// registry test and by first use).
[[nodiscard]] const std::vector<ScenarioSpec>& registry();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const ScenarioSpec* find_scenario(std::string_view name);

/// Lookup by name; throws std::invalid_argument listing the known names.
[[nodiscard]] const ScenarioSpec& scenario_or_throw(std::string_view name);

}  // namespace htpb::scenario
