// The declarative scenario API: one serializable value type that captures
// an entire experiment -- mesh/system, workload mix, Trojan behaviour
// (duty-cycle included), placement axes, detector operating points,
// epochs, seeds and thread budget.
//
// Every paper experiment (Figs. 3-6, Tables I-III, the Sec. V placement
// study, the defense extensions) is a ScenarioSpec in the registry
// (scenario/registry.hpp); the single `htpb_run` driver and the thin
// bench formatters both execute specs through scenario/runner.hpp. New
// scenarios -- new Trojan kinds, detector grids, response policies -- are
// new specs (or spec files), not new binaries.
//
// Serialization contract (locked by tests/scenario/spec_test.cpp):
//  - to_json / from_json round-trip exactly: from_json(to_json(s)) == s,
//    including double fields bit for bit.
//  - from_json is strict: unknown keys anywhere in the document are an
//    error (typos must not silently change an experiment), and
//    schema_version must match kSchemaVersion.
//  - Axis fields are emitted sparsely: a spec's JSON only carries the
//    sections its kind reads, so checked-in spec files stay readable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"
#include "power/budgeter.hpp"
#include "power/defense.hpp"
#include "power/response.hpp"
#include "system/system_config.hpp"

namespace htpb::scenario {

/// Bump on any incompatible spec-schema change; from_json rejects files
/// written for a different version instead of guessing.
inline constexpr std::int64_t kSchemaVersion = 1;

/// The experiment families of the paper reproduction. One value per
/// reduction shape (what is swept and what is reported); the shared
/// sections (system/workload/trojan/...) mean the same thing under every
/// kind.
enum class ScenarioKind : std::uint8_t {
  kInfectionVsHtCount,       ///< Fig. 3: infection rate vs #HTs, GM arms
  kInfectionVsDistribution,  ///< Fig. 4: center/random/corner clusters
  kAttackEffect,             ///< Fig. 5: Q vs infection rate per mix
  kPerformanceChange,        ///< Fig. 6: per-app Theta vs infection rate
  kPlacementStudy,           ///< Sec. V-C: model-optimized vs random
  kDefenseSweep,             ///< Defense ROC: bands x placements (+ROC grid)
  kDefenseEvaluation,        ///< Detection & mitigation per mix
  kAttackComparison,         ///< False-data vs flooding; duty-cycling
  kBudgeterAblation,         ///< Q under every budgeting algorithm
  kConfigReport,             ///< Table I: configuration + timing check
  kBenchmarkReport,          ///< Tables II-III: roster, mixes, measured Phi
  kAreaPowerReport,          ///< Sec. III-D: HT area/power stealth numbers
  kDefenseClosedLoop,        ///< Response policies x {static, adaptive} Trojan
};
inline constexpr int kScenarioKindCount = 13;

/// Enum <-> string maps used by the JSON schema. Every to_string is an
/// exhaustive switch and every from_string throws std::invalid_argument
/// on unknown names; tests/scenario/spec_test.cpp walks all enumerators
/// through both directions.
[[nodiscard]] const char* to_string(ScenarioKind kind) noexcept;
[[nodiscard]] ScenarioKind scenario_kind_from_string(std::string_view name);
[[nodiscard]] const char* to_string(system::GmPlacement placement) noexcept;
[[nodiscard]] system::GmPlacement gm_placement_from_string(
    std::string_view name);
[[nodiscard]] power::BudgeterKind budgeter_kind_from_string(
    std::string_view name);
[[nodiscard]] const char* to_string(power::DetectorKind kind) noexcept;
[[nodiscard]] power::DetectorKind detector_kind_from_string(
    std::string_view name);

/// Paper mesh shape for a node count (64/128/256/512, Table I's sweep);
/// throws std::invalid_argument otherwise. The spec stores width x height
/// so arbitrary meshes are first-class; size-swept kinds (Figs. 3-4) map
/// their per-arm node counts through this.
[[nodiscard]] std::pair<int, int> mesh_for_size(int nodes);

/// The chip (system::SystemConfig's experiment-relevant surface).
struct SystemSpec {
  int width = 16;
  int height = 16;
  Cycle epoch_cycles = 2000;
  Cycle first_epoch_cycle = 10;
  double budget_fraction = 0.50;
  power::BudgeterKind budgeter = power::BudgeterKind::kProportional;
  bool guard_requests = false;
  system::GmPlacement gm_placement = system::GmPlacement::kCenter;
  std::optional<NodeId> gm_node;
  /// Per-node workload stream seed (SystemConfig::seed).
  std::uint64_t seed = 1;

  [[nodiscard]] system::SystemConfig to_system_config() const;

  friend bool operator==(const SystemSpec&, const SystemSpec&) = default;
};

/// What runs on the chip.
struct WorkloadSpec {
  /// Table III mix name ("mix-1".."mix-4"); empty = the uniform
  /// infection-only workload (Figs. 3-4).
  std::string mix;
  /// Mix axis for kinds that sweep several mixes (Figs. 5-6, the
  /// placement study, the defense evaluation). Takes precedence over
  /// `mix` for those kinds.
  std::vector<std::string> mixes;
  /// Threads per application; 0 = divide all cores evenly.
  int threads_per_app = 0;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// The adaptive attacker agent's duty-cycle controller (mirrors
/// core::TrojanAdaptation; the runner bridges the fields). Mutually
/// exclusive with toggle_period_epochs -- both steer the same activation
/// signal.
struct AdaptationSpec {
  bool enabled = false;
  double alpha = 0.5;
  double backoff_ratio = 0.7;
  int max_on_epochs = 1;
  int hold_off_epochs = 1;

  friend bool operator==(const AdaptationSpec&, const AdaptationSpec&) = default;
};

/// The attacker's CONFIG_CMD payload plus its activation schedule.
struct TrojanSpec {
  bool active = true;
  bool attenuate_victims = true;
  bool boost_attackers = true;
  double victim_scale = 0.125;
  double attacker_boost = 4.0;
  /// Duty-cycled activation: flip the activation signal every N epochs
  /// (Sec. III-B); 0 = static.
  int toggle_period_epochs = 0;
  /// Grant-feedback adaptation (the closed loop's attacker half).
  AdaptationSpec adaptation;

  friend bool operator==(const TrojanSpec&, const TrojanSpec&) = default;
};

struct EpochSpec {
  int warmup = 2;
  int measure = 5;

  friend bool operator==(const EpochSpec&, const EpochSpec&) = default;
};

/// A detector operating point (mirrors power::DetectorConfig).
struct DetectorSpec {
  power::DetectorKind kind = power::DetectorKind::kSelfEwma;
  double history_alpha = 0.25;
  double low_ratio = 0.45;
  double high_ratio = 2.2;
  int warmup_epochs = 2;
  int confirm_epochs = 2;

  [[nodiscard]] power::DetectorConfig to_config() const;
  [[nodiscard]] static DetectorSpec from_config(
      const power::DetectorConfig& cfg);

  friend bool operator==(const DetectorSpec&, const DetectorSpec&) = default;
};

/// A closed-loop response policy (mirrors power::ResponseConfig).
struct ResponseSpec {
  power::ResponseKind kind = power::ResponseKind::kQuarantine;
  power::ResponseTrigger trigger = power::ResponseTrigger::kHigh;
  int sanction_epochs = 3;
  double recovery_threshold = 0.9;

  [[nodiscard]] power::ResponseConfig to_config() const;
  [[nodiscard]] static ResponseSpec from_config(
      const power::ResponseConfig& cfg);

  friend bool operator==(const ResponseSpec&, const ResponseSpec&) = default;
};

/// A trust band [low, high] around the detector reference -- the
/// operating-point axis of defense sweeps.
struct BandSpec {
  double low = 0.45;
  double high = 2.2;

  friend bool operator==(const BandSpec&, const BandSpec&) = default;
};

/// One Fig. 3 arm: a chip size and the #HT sweep evaluated on it.
struct InfectionArm {
  int nodes = 64;
  std::vector<int> ht_counts;

  friend bool operator==(const InfectionArm&, const InfectionArm&) = default;
};

/// A clustered Trojan placement, anchored declaratively so the spec needs
/// no concrete node ids (they depend on the mesh and GM placement).
struct ClusterSpec {
  enum class At : std::uint8_t {
    kGm,       ///< around the global manager (worst case for the defender)
    kCenter,   ///< around the mesh center
    kCorner,   ///< in the (0,0) corner
    kQuarter,  ///< at (width/4, height/4) -- the mid-mesh defense arm
  };
  static constexpr int kAtCount = 4;

  At at = At::kGm;
  int hts = 8;

  friend bool operator==(const ClusterSpec&, const ClusterSpec&) = default;
};

[[nodiscard]] const char* to_string(ClusterSpec::At at) noexcept;
[[nodiscard]] ClusterSpec::At cluster_at_from_string(std::string_view name);

/// The stealthy-Trojan ROC grid riding on the defense sweep: dynamics
/// axes (duty-cycle period x modification factor) are simulated once per
/// placement; the detector grid (bands x kinds) replays the traces.
struct RocSpec {
  std::vector<int> periods;      ///< toggle periods; 0 = always-on
  std::vector<double> factors;   ///< victim_scale values
  /// How many of the sweep's placements the grid records (a prefix).
  int placements = 0;
  /// first_epoch_cycle for the period=0 (attack-from-epoch-0) cells: the
  /// CONFIG_CMD broadcast must land before the first POWER_REQ.
  Cycle epoch0_first_epoch_cycle = 600;

  [[nodiscard]] bool enabled() const noexcept {
    return !periods.empty() && !factors.empty() && placements > 0;
  }

  friend bool operator==(const RocSpec&, const RocSpec&) = default;
};

/// Kind-specific sweep axes. Sparse: a spec serializes only the fields
/// its kind reads (spec.cpp documents the mapping kind -> fields), and
/// validate() checks the required ones are populated.
struct AxesSpec {
  // kInfectionVsHtCount
  std::vector<InfectionArm> arms;
  std::vector<system::GmPlacement> gm_placements;
  // kInfectionVsDistribution
  std::vector<int> sizes;
  std::vector<int> ht_divisors;
  /// Random-placement repetitions averaged per cell (Figs. 3-4).
  int seeds = 0;
  // kAttackEffect / kPerformanceChange
  std::vector<double> infection_targets;
  int placement_max_hts = 64;
  // kPlacementStudy (+ kBenchmarkReport / kAreaPowerReport chip size)
  int nodes = 0;
  int max_hts = 16;
  int train_samples = 24;
  int random_trials = 4;
  int candidates_per_m = 60;
  int shortlist = 3;
  // kDefenseSweep / kDefenseEvaluation / kDefenseClosedLoop
  std::vector<BandSpec> bands;
  std::vector<ClusterSpec> placements;
  int cluster_hts = 8;
  int detection_measure_epochs = 6;
  RocSpec roc;
  /// kDefenseClosedLoop: the response-policy axis (each kind is one arm;
  /// also accepted by kDefenseSweep as DefenseSweep's response axis).
  std::vector<power::ResponseKind> responses;
  // kAttackComparison
  std::vector<NodeId> flood_sources;
  double flood_rate = 0.15;
  std::vector<int> toggle_periods;
  int duty_warmup_epochs = 0;
  int duty_measure_epochs = 8;
  // kBudgeterAblation
  std::vector<power::BudgeterKind> budgeters;
  // kAreaPowerReport
  std::vector<int> ht_counts;

  friend bool operator==(const AxesSpec&, const AxesSpec&) = default;
};

struct ScenarioSpec {
  std::int64_t schema_version = kSchemaVersion;
  std::string name;
  ScenarioKind kind = ScenarioKind::kConfigReport;
  /// Header strings benches print (experiment line, paper reference and
  /// the expected qualitative shape).
  std::string title;
  std::string paper_ref;
  std::string expectation;

  SystemSpec system;
  WorkloadSpec workload;
  TrojanSpec trojan;
  EpochSpec epochs;
  /// Detection policy for kinds that run one detector in-sim
  /// (kDefenseEvaluation, kDefenseClosedLoop); sweeps carry their grids
  /// in axes.bands.
  std::optional<DetectorSpec> detector;
  /// Closed-loop response policy; requires `detector`. For
  /// kDefenseClosedLoop this sets trigger/sanction/recovery parameters
  /// while axes.responses supplies the policy-kind axis.
  std::optional<ResponseSpec> response;
  AxesSpec axes;

  /// Experiment-level seed: every stochastic choice the runner makes
  /// (random placements, training samples, optimizer streams, flooder
  /// phases) derives from this value and loop indices alone -- no entry
  /// point reachable from a scenario run draws from a default-seeded Rng
  /// (tests/scenario/runner_test.cpp locks same-seed determinism).
  std::uint64_t seed = 1;
  /// ParallelSweepRunner pool cap; 0 = default (HTPB_THREADS or cores).
  int threads = 0;

  /// Sparse JSON overlay merged over the spec by with_quick() -- the
  /// declarative form of the benches' HTPB_QUICK trims. Objects merge
  /// recursively, everything else (arrays included) replaces. kNull =
  /// no quick variant.
  json::Value quick;

  /// Warmup-checkpoint directory for the campaign layer's warmup fork
  /// (core::CampaignConfig::checkpoint_dir); empty = in-memory cache
  /// only. Runtime plumbing written through by resolve() from
  /// RunOptions::checkpoint_dir -- NOT part of the spec schema: never
  /// serialized by to_json, never read by from_json. Checkpoints are
  /// keyed by a config fingerprint and checksummed, so a stale or shared
  /// directory can never change a result, only skip warmup simulation.
  // json-exempt: runtime plumbing from RunOptions, deliberately outside the spec schema (see above)
  std::string checkpoint_dir;

  [[nodiscard]] json::Value to_json() const;
  [[nodiscard]] static ScenarioSpec from_json(const json::Value& v);

  /// Schema-level sanity: kind-required axes populated, ranges legal,
  /// mix names known, mesh shape usable. Throws std::invalid_argument.
  void validate() const;

  /// The spec with its quick overlay applied (and re-validated); returns
  /// *this unchanged when no overlay is present.
  [[nodiscard]] ScenarioSpec with_quick() const;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// Parses, deserializes and validates a spec file in one step. Every
/// error -- unreadable file, malformed JSON, schema violation, validate()
/// failure -- is rethrown with the offending path prefixed, so a fleet
/// worker's stderr names which cell file broke.
[[nodiscard]] ScenarioSpec load_spec_file(const std::string& path);

/// Recursive JSON merge used by with_quick(): objects merge member-wise
/// (patch members override or extend), every other patch value replaces
/// the base wholesale.
[[nodiscard]] json::Value merge_patch(const json::Value& base,
                                      const json::Value& patch);

/// `--set key=value` override grammar: `key` is a dot-separated path into
/// the spec JSON ("trojan.victim_scale", "axes.bands", "epochs.measure");
/// `value` is parsed as JSON first ("0.3", "[1,2]", "true") and taken as
/// a bare string when that fails ("mix-2"). Creates missing object
/// members; throws std::runtime_error when the path crosses a non-object.
void apply_override(json::Value& spec_json, std::string_view dotted_key,
                    std::string_view value_text);

/// Fluent builder for C++ callers (the registry is written with it).
/// Chainable setters cover the common scalar fields; axes() hands out the
/// axes section for kind-specific sweeps; build() validates.
class ScenarioBuilder {
 public:
  ScenarioBuilder(std::string name, ScenarioKind kind);

  ScenarioBuilder& title(std::string text);
  ScenarioBuilder& paper_ref(std::string text);
  ScenarioBuilder& expectation(std::string text);

  ScenarioBuilder& mesh(int width, int height);
  /// Paper preset shapes (64/128/256/512).
  ScenarioBuilder& size(int nodes);
  ScenarioBuilder& epoch_cycles(Cycle cycles);
  ScenarioBuilder& first_epoch_cycle(Cycle cycle);
  ScenarioBuilder& budget_fraction(double fraction);
  ScenarioBuilder& budgeter(power::BudgeterKind kind);
  ScenarioBuilder& guard_requests(bool on);
  ScenarioBuilder& gm_placement(system::GmPlacement placement);

  ScenarioBuilder& mix(std::string name);
  /// All four Table III mixes, in order.
  ScenarioBuilder& standard_mixes();
  ScenarioBuilder& threads_per_app(int threads);

  ScenarioBuilder& trojan_active(bool active);
  ScenarioBuilder& victim_scale(double scale);
  ScenarioBuilder& attacker_boost(double boost);
  ScenarioBuilder& toggle_period(int epochs);

  ScenarioBuilder& warmup_epochs(int epochs);
  ScenarioBuilder& measure_epochs(int epochs);
  ScenarioBuilder& detector(DetectorSpec spec);
  ScenarioBuilder& response(ResponseSpec spec);
  ScenarioBuilder& adaptation(AdaptationSpec spec);
  ScenarioBuilder& seed(std::uint64_t value);
  ScenarioBuilder& threads(int count);

  /// Quick overlay, written as JSON text for readability at call sites.
  ScenarioBuilder& quick(std::string_view overlay_json);

  [[nodiscard]] AxesSpec& axes() noexcept { return spec_.axes; }
  [[nodiscard]] SystemSpec& system() noexcept { return spec_.system; }
  [[nodiscard]] WorkloadSpec& workload() noexcept { return spec_.workload; }

  /// Validates and returns the spec (by value; the builder stays usable).
  [[nodiscard]] ScenarioSpec build() const;

 private:
  ScenarioSpec spec_;
};

}  // namespace htpb::scenario
