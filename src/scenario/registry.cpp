#include "scenario/registry.hpp"

#include <stdexcept>

namespace htpb::scenario {

namespace {

using system::GmPlacement;

// Each maker mirrors the configuration its legacy bench main hand-rolled;
// the seeds are the constants those mains hard-coded (runner.cpp derives
// the per-loop streams from them exactly as the mains did, so a scenario
// run is bit-identical to the pre-registry bench -- locked by
// tests/scenario/runner_test.cpp).

ScenarioSpec make_fig3() {
  ScenarioBuilder b("fig3", ScenarioKind::kInfectionVsHtCount);
  b.title("Fig. 3 -- infection rate vs number of HTs (GM center vs corner)")
      .paper_ref("Fig. 3(a) size 64, Fig. 3(b) size 512")
      .expectation(
          "rate rises with #HTs; corner GM >= ~20% higher beyond 10 HTs")
      .epoch_cycles(1500)
      .warmup_epochs(1)
      .measure_epochs(3)
      .seed(1000)
      .quick(R"({"epochs": {"measure": 2}, "axes": {"seeds": 2}})");
  b.axes().arms = {{64, {2, 5, 10, 15, 20, 25, 30}},
                   {512, {5, 10, 20, 30, 40, 50, 60}}};
  b.axes().gm_placements = {GmPlacement::kCenter, GmPlacement::kCorner};
  b.axes().seeds = 3;
  return b.build();
}

ScenarioSpec make_fig4() {
  ScenarioBuilder b("fig4", ScenarioKind::kInfectionVsDistribution);
  b.title("Fig. 4 -- infection rate vs HT distribution")
      .paper_ref("Fig. 4(a) #HT = size/16, Fig. 4(b) #HT = size/8")
      .expectation(
          "center cluster > random > corner cluster at every size "
          "(paper: 1.59x and 9.85x at size 256, 1/16)")
      .epoch_cycles(1500)
      .warmup_epochs(1)
      .measure_epochs(3)
      .seed(500)
      .quick(R"({"epochs": {"measure": 2}, "axes": {"seeds": 2}})");
  b.axes().sizes = {64, 128, 256, 512};
  b.axes().ht_divisors = {16, 8};
  b.axes().seeds = 3;
  return b.build();
}

/// Shared shape of the Figs. 5-6 attack campaigns (the old
/// bench_util::mix_campaign_config): 256 cores, Table III mixes, 50%
/// budget, victim x0.10 / attacker x8.
void attack_campaign_base(ScenarioBuilder& b) {
  b.size(256)
      .epoch_cycles(2000)
      .standard_mixes()
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(2)
      .measure_epochs(5)
      .seed(42);
  b.axes().infection_targets = {0.1, 0.3, 0.5, 0.7, 0.9};
  b.axes().placement_max_hts = 64;
}

ScenarioSpec make_fig5() {
  ScenarioBuilder b("fig5", ScenarioKind::kAttackEffect);
  b.title("Fig. 5 -- attack effect Q vs infection rate (4 mixes, 256 cores)")
      .paper_ref("Fig. 5")
      .expectation(
          "Q grows with infection rate for every mix; paper peaks at "
          "Q = 6.89 (mix-4, infection 0.9)")
      .quick(R"({"epochs": {"measure": 3},
                 "axes": {"infection_targets": [0.3, 0.9]}})");
  attack_campaign_base(b);
  return b.build();
}

ScenarioSpec make_fig6() {
  ScenarioBuilder b("fig6", ScenarioKind::kPerformanceChange);
  b.title("Fig. 6 -- per-application Theta vs infection rate (4 mixes)")
      .paper_ref("Fig. 6(a)-(d)")
      .expectation(
          "attackers' Theta >= 1 and rises; victims' Theta < 1 and falls; "
          "compute-bound victims fall hardest")
      .quick(R"({"epochs": {"measure": 3},
                 "axes": {"infection_targets": [0.5]}})");
  attack_campaign_base(b);
  return b.build();
}

ScenarioSpec make_table1() {
  ScenarioBuilder b("table1", ScenarioKind::kConfigReport);
  b.title("Table I -- simulator configuration")
      .paper_ref("Table I")
      .expectation("all architecture parameters implemented 1:1 where given")
      .size(256);
  return b.build();
}

ScenarioSpec make_table2() {
  ScenarioBuilder b("table2", ScenarioKind::kBenchmarkReport);
  b.title("Tables II & III -- benchmarks and mixes")
      .paper_ref("Table II, Table III")
      .expectation(
          "11 PARSEC/SPLASH-2 profiles; 4 mixes with 1-3 "
          "attackers/victims; compute-bound apps have higher Phi")
      .epoch_cycles(1500)
      .warmup_epochs(0)
      .measure_epochs(3);
  b.axes().nodes = 64;
  return b.build();
}

ScenarioSpec make_area_power() {
  ScenarioBuilder b("secIIID-area-power", ScenarioKind::kAreaPowerReport);
  b.title("Sec. III-D -- hardware Trojan area & power vs router/chip")
      .paper_ref("Sec. III-D")
      .expectation(
          "HT ~0.017%/0.0017% of one router; 60 HTs ~0.002%/0.0002% of "
          "all routers in a 512-node chip");
  b.axes().ht_counts = {1, 10, 20, 40, 60};
  b.axes().nodes = 512;
  return b.build();
}

ScenarioSpec make_placement_study() {
  ScenarioBuilder b("secVC-placement", ScenarioKind::kPlacementStudy);
  b.title("Sec. V-C -- model-optimized vs random HT placement (16 HTs)")
      .paper_ref("Sec. V-C")
      .expectation(
          "optimized placement improves Q by ~30% (mixes 1-3) and "
          "up to ~110% (mix-4) over random")
      .size(64)
      .epoch_cycles(2000)
      .standard_mixes()
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(2)
      .measure_epochs(5)
      .seed(7)
      .quick(R"({"epochs": {"measure": 3},
                 "axes": {"train_samples": 10, "random_trials": 2}})");
  b.axes().nodes = 64;
  b.axes().max_hts = 16;
  b.axes().train_samples = 24;
  b.axes().random_trials = 4;
  b.axes().candidates_per_m = 60;
  b.axes().shortlist = 3;
  return b.build();
}

ScenarioSpec make_defense_roc() {
  ScenarioBuilder b("defense-roc", ScenarioKind::kDefenseSweep);
  b.title("Defense sweep -- trust-band operating points x HT placements")
      .paper_ref("extension of Sec. VI (conclusion)")
      .expectation(
          "tight bands detect fast with some false positives and kill "
          "most of Q; loose bands go blind and let Q through")
      .size(64)
      .epoch_cycles(2000)
      .mix("mix-1")
      .victim_scale(0.10)
      .attacker_boost(8.0)
      // Mid-run activation: the detector earns honest history, then the
      // Trojans wake up (the scenario a deployed detector actually faces).
      .trojan_active(false)
      .toggle_period(3)
      .warmup_epochs(2)
      .measure_epochs(6)
      .quick(R"({"epochs": {"measure": 4},
                 "axes": {
                   "bands": [{"low": 0.6, "high": 1.6},
                             {"low": 0.3, "high": 3.0}],
                   "placements": [{"at": "gm", "hts": 8},
                                  {"at": "quarter", "hts": 8}],
                   "roc": {"periods": [2], "factors": [0.1, 0.6],
                           "placements": 1}}})");
  // Operating points: the trust band widened from tight (flag anything
  // off by ~25%) to loose (only 4x excursions).
  b.axes().bands = {
      {0.8, 1.25}, {0.6, 1.6}, {0.45, 2.2}, {0.3, 3.0}, {0.25, 4.0}};
  // The Fig. 4 arms: GM-adjacent, mid-mesh and corner clusters.
  b.axes().placements = {{ClusterSpec::At::kGm, 8},
                         {ClusterSpec::At::kQuarter, 8},
                         {ClusterSpec::At::kCorner, 8}};
  b.axes().roc.periods = {0, 2, 4};
  b.axes().roc.factors = {0.10, 0.35, 0.60, 0.80};
  b.axes().roc.placements = 2;
  b.axes().roc.epoch0_first_epoch_cycle = 600;
  return b.build();
}

ScenarioSpec make_defense_evaluation() {
  ScenarioBuilder b("defense-evaluation", ScenarioKind::kDefenseEvaluation);
  b.title(
       "Defense evaluation -- detection & mitigation of the false-data "
       "attack")
      .paper_ref("extension of Sec. VI (conclusion)")
      .expectation(
          "detector flags most victims/accomplices with no false "
          "positives; the guarded budgeter removes most of the Q "
          "excursion")
      .size(64)
      .epoch_cycles(2000)
      .standard_mixes()
      .victim_scale(0.10)
      .attacker_boost(8.0)
      // Mid-run activation for the detection arm; the runner pins the
      // damage arms to an always-on Trojan so plain and guarded runs
      // stay directly comparable.
      .trojan_active(false)
      .toggle_period(3)
      .warmup_epochs(2)
      .measure_epochs(5)
      .detector(DetectorSpec{})
      .quick(R"({"epochs": {"measure": 3}})");
  b.axes().cluster_hts = 8;
  b.axes().detection_measure_epochs = 6;
  return b.build();
}

ScenarioSpec make_attack_comparison() {
  ScenarioBuilder b("attack-comparison", ScenarioKind::kAttackComparison);
  b.title(
       "Attack comparison -- false-data vs flooding; duty-cycled "
       "activation")
      .paper_ref("Sec. II-B taxonomy / Sec. III-B activation control")
      .expectation(
          "the false-data attack injects zero packets (invisible to "
          "traffic counters) while flooding lights up the victim router; "
          "duty-cycling scales damage with exposure")
      .size(64)
      .epoch_cycles(2000)
      .mix("mix-1")
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(2)
      .measure_epochs(5)
      .seed(7);
  b.axes().cluster_hts = 8;
  b.axes().flood_sources = {0, 7, 56, 63};
  b.axes().flood_rate = 0.15;
  b.axes().toggle_periods = {0, 4, 2, 1};
  b.axes().duty_warmup_epochs = 0;
  b.axes().duty_measure_epochs = 8;
  return b.build();
}

ScenarioSpec make_budgeter_ablation() {
  ScenarioBuilder b("budgeter-ablation", ScenarioKind::kBudgeterAblation);
  b.title(
       "Ablation -- attack effect vs budgeting algorithm (mix-1, 64 "
       "cores)")
      .paper_ref("Sec. I / II-A claim: attack is allocation-algorithm "
                 "independent")
      .expectation(
          "Q > 1 under every policy; magnitude varies with how "
          "aggressively the policy follows the (tampered) requests")
      .size(64)
      .epoch_cycles(2000)
      .mix("mix-1")
      .victim_scale(0.10)
      .attacker_boost(8.0)
      .warmup_epochs(2)
      .measure_epochs(5)
      .quick(R"({"epochs": {"measure": 3}})");
  b.axes().cluster_hts = 8;
  b.axes().budgeters = {
      power::BudgeterKind::kUniform, power::BudgeterKind::kGreedy,
      power::BudgeterKind::kProportional,
      power::BudgeterKind::kDynamicProgramming, power::BudgeterKind::kMarket};
  return b.build();
}

ScenarioSpec make_defense_closed_loop() {
  ScenarioBuilder b("defense-closed-loop", ScenarioKind::kDefenseClosedLoop);
  b.title(
       "Closed loop -- response policies x {static, adaptive} duty-cycled "
       "Trojan")
      .paper_ref("extension of Sec. VI (conclusion)")
      .expectation(
          "quarantine/throttle/migrate all recover victim grants with "
          "little collateral against the static Trojan; the adaptive "
          "Trojan halves the detection rate at equal mean duty and "
          "degrades every policy's recovery")
      .size(64)
      .epoch_cycles(2000)
      .mix("mix-1")
      .victim_scale(0.10)
      .attacker_boost(8.0)
      // Static arm: mid-run activation on a period-2 duty cycle (mean
      // duty 0.5). The adaptive arm flips to grant-feedback control at
      // the same mean duty (max_on 1 / hold_off 1).
      .trojan_active(false)
      .toggle_period(2)
      .warmup_epochs(2)
      .measure_epochs(8)
      .detector(DetectorSpec{})
      .response(ResponseSpec{})
      .adaptation(AdaptationSpec{})
      .quick(R"({"epochs": {"measure": 6},
                 "axes": {"placements": [{"at": "gm", "hts": 8}]}})");
  b.axes().placements = {{ClusterSpec::At::kGm, 8},
                         {ClusterSpec::At::kQuarter, 8}};
  b.axes().responses = {power::ResponseKind::kQuarantine,
                        power::ResponseKind::kThrottle,
                        power::ResponseKind::kMigrate};
  return b.build();
}

}  // namespace

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> specs = [] {
    std::vector<ScenarioSpec> all;
    all.push_back(make_fig3());
    all.push_back(make_fig4());
    all.push_back(make_fig5());
    all.push_back(make_fig6());
    all.push_back(make_table1());
    all.push_back(make_table2());
    all.push_back(make_area_power());
    all.push_back(make_placement_study());
    all.push_back(make_defense_roc());
    all.push_back(make_defense_evaluation());
    all.push_back(make_attack_comparison());
    all.push_back(make_budgeter_ablation());
    all.push_back(make_defense_closed_loop());
    return all;
  }();
  return specs;
}

const ScenarioSpec* find_scenario(std::string_view name) {
  for (const ScenarioSpec& spec : registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

const ScenarioSpec& scenario_or_throw(std::string_view name) {
  if (const ScenarioSpec* spec = find_scenario(name)) return *spec;
  std::string known;
  for (const ScenarioSpec& spec : registry()) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  throw std::invalid_argument("unknown scenario \"" + std::string(name) +
                              "\"; registered: " + known);
}

}  // namespace htpb::scenario
