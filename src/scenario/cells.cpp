#include "scenario/cells.hpp"

#include <cstdio>
#include <stdexcept>

#include "power/budgeter.hpp"

namespace htpb::scenario {

namespace {

[[nodiscard]] std::string cell_id(std::size_t index, const std::string& slug) {
  char prefix[16];
  std::snprintf(prefix, sizeof(prefix), "c%03zu", index);
  return std::string(prefix) + "-" + slug;
}

/// A cell spec is the resolved spec with one slice selected and the quick
/// overlay stripped: with_quick already ran, and a worker re-applying it
/// would double the trim.
[[nodiscard]] ScenarioSpec cell_base(const ScenarioSpec& resolved) {
  ScenarioSpec cell = resolved;
  cell.quick = json::Value();
  return cell;
}

// ---------------------------------------------------------------- merge

[[nodiscard]] const json::Value* member(const json::Value& cell,
                                        const char* key) {
  if (!cell.is_object()) return nullptr;  // null = failed cell
  return cell.as_object().find(key);
}

/// Appends every element of the cell's `key` array to `dst`; a failed
/// (null) or malformed cell contributes nothing, so the merged tree stays
/// valid with holes where the failures were.
void append_elements(json::Array& dst, const json::Value& cell,
                     const char* key) {
  const json::Value* arr = member(cell, key);
  if (arr == nullptr || !arr->is_array()) return;
  for (const json::Value& v : arr->as_array()) dst.push_back(v);
}

/// The keys run_scenario writes around the payload; everything else in a
/// cell envelope IS the payload.
[[nodiscard]] bool is_envelope_key(const std::string& key) {
  return key == "scenario" || key == "kind" || key == "quick" ||
         key == "seed" || key == "threads" || key == "timing";
}

void require_cell_count(std::size_t expected, std::size_t got) {
  if (expected != got) {
    throw std::runtime_error(
        "merge_cell_results: spec expands to " + std::to_string(expected) +
        " cells but " + std::to_string(got) + " results were given");
  }
}

}  // namespace

std::vector<CellPlan> expand_cells(const ScenarioSpec& resolved) {
  std::vector<CellPlan> cells;
  const auto add = [&](const std::string& slug, ScenarioSpec spec) {
    spec.validate();
    cells.push_back(CellPlan{cell_id(cells.size(), slug), std::move(spec)});
  };

  switch (resolved.kind) {
    case ScenarioKind::kInfectionVsHtCount:
      for (const InfectionArm& arm : resolved.axes.arms) {
        for (const int hts : arm.ht_counts) {
          ScenarioSpec cell = cell_base(resolved);
          cell.axes.arms = {InfectionArm{arm.nodes, {hts}}};
          add("n" + std::to_string(arm.nodes) + "-ht" + std::to_string(hts),
              std::move(cell));
        }
      }
      break;

    case ScenarioKind::kInfectionVsDistribution:
      for (const int divisor : resolved.axes.ht_divisors) {
        for (const int size : resolved.axes.sizes) {
          ScenarioSpec cell = cell_base(resolved);
          cell.axes.ht_divisors = {divisor};
          cell.axes.sizes = {size};
          add("d" + std::to_string(divisor) + "-s" + std::to_string(size),
              std::move(cell));
        }
      }
      break;

    case ScenarioKind::kAttackEffect:
    case ScenarioKind::kPerformanceChange:
    case ScenarioKind::kDefenseEvaluation:
      for (const std::string& mix : resolved.workload.mixes) {
        ScenarioSpec cell = cell_base(resolved);
        cell.workload.mixes = {mix};
        add(mix, std::move(cell));
      }
      break;

    case ScenarioKind::kPlacementStudy:
      // The runner keys each mix's stream as Rng(seed + mix_index). A
      // cell sees its mix at local index 0, so rebasing the cell's seed
      // by the global index reproduces the stream exactly. system.seed
      // (the workload streams) is deliberately left alone.
      for (std::size_t mix_i = 0; mix_i < resolved.workload.mixes.size();
           ++mix_i) {
        ScenarioSpec cell = cell_base(resolved);
        cell.workload.mixes = {resolved.workload.mixes[mix_i]};
        cell.seed = resolved.seed + mix_i;
        add(resolved.workload.mixes[mix_i], std::move(cell));
      }
      break;

    case ScenarioKind::kBudgeterAblation:
      for (const power::BudgeterKind kind : resolved.axes.budgeters) {
        ScenarioSpec cell = cell_base(resolved);
        cell.axes.budgeters = {kind};
        add(power::to_string(kind), std::move(cell));
      }
      break;

    case ScenarioKind::kDefenseClosedLoop:
      for (const ClusterSpec& placement : resolved.axes.placements) {
        ScenarioSpec cell = cell_base(resolved);
        cell.axes.placements = {placement};
        add(to_string(placement.at), std::move(cell));
      }
      break;

    case ScenarioKind::kDefenseSweep:
    case ScenarioKind::kAttackComparison:
    case ScenarioKind::kConfigReport:
    case ScenarioKind::kBenchmarkReport:
    case ScenarioKind::kAreaPowerReport:
      add("all", cell_base(resolved));
      break;
  }
  return cells;
}

json::Value merge_cell_results(const ScenarioSpec& resolved, bool quick,
                               int threads,
                               const std::vector<json::Value>& cell_results) {
  json::Object envelope;
  envelope["scenario"] = json::Value(resolved.name);
  envelope["kind"] = json::Value(to_string(resolved.kind));
  envelope["quick"] = json::Value(quick);
  envelope["seed"] = json::Value(static_cast<long long>(resolved.seed));
  envelope["threads"] = json::Value(threads);

  switch (resolved.kind) {
    case ScenarioKind::kInfectionVsHtCount: {
      std::size_t expected = 0;
      for (const InfectionArm& arm : resolved.axes.arms) {
        expected += arm.ht_counts.size();
      }
      require_cell_count(expected, cell_results.size());
      std::size_t k = 0;
      json::Array arms;
      for (const InfectionArm& arm : resolved.axes.arms) {
        json::Array rows;
        for (std::size_t h = 0; h < arm.ht_counts.size(); ++h) {
          const json::Value* cell_arms = member(cell_results[k++], "arms");
          if (cell_arms == nullptr || !cell_arms->is_array()) continue;
          for (const json::Value& cell_arm : cell_arms->as_array()) {
            append_elements(rows, cell_arm, "rows");
          }
        }
        json::Object arm_out;
        arm_out["nodes"] = json::Value(arm.nodes);
        arm_out["rows"] = json::Value(std::move(rows));
        arms.push_back(json::Value(std::move(arm_out)));
      }
      envelope["arms"] = json::Value(std::move(arms));
      break;
    }

    case ScenarioKind::kInfectionVsDistribution: {
      require_cell_count(
          resolved.axes.ht_divisors.size() * resolved.axes.sizes.size(),
          cell_results.size());
      std::size_t k = 0;
      json::Array divisors;
      for (const int divisor : resolved.axes.ht_divisors) {
        json::Array rows;
        for (std::size_t s = 0; s < resolved.axes.sizes.size(); ++s) {
          const json::Value* cell_divs =
              member(cell_results[k++], "divisors");
          if (cell_divs == nullptr || !cell_divs->is_array()) continue;
          for (const json::Value& cell_div : cell_divs->as_array()) {
            append_elements(rows, cell_div, "rows");
          }
        }
        json::Object d;
        d["divisor"] = json::Value(divisor);
        d["rows"] = json::Value(std::move(rows));
        divisors.push_back(json::Value(std::move(d)));
      }
      envelope["divisors"] = json::Value(std::move(divisors));
      break;
    }

    case ScenarioKind::kAttackEffect:
    case ScenarioKind::kPerformanceChange:
    case ScenarioKind::kPlacementStudy: {
      require_cell_count(resolved.workload.mixes.size(), cell_results.size());
      json::Array mixes;
      for (const json::Value& cell : cell_results) {
        append_elements(mixes, cell, "mixes");
      }
      envelope["mixes"] = json::Value(std::move(mixes));
      break;
    }

    case ScenarioKind::kDefenseEvaluation: {
      require_cell_count(resolved.workload.mixes.size(), cell_results.size());
      json::Array rows;
      for (const json::Value& cell : cell_results) {
        append_elements(rows, cell, "rows");
      }
      envelope["rows"] = json::Value(std::move(rows));
      break;
    }

    case ScenarioKind::kBudgeterAblation: {
      require_cell_count(resolved.axes.budgeters.size(), cell_results.size());
      json::Array rows;
      for (const json::Value& cell : cell_results) {
        append_elements(rows, cell, "rows");
      }
      envelope["rows"] = json::Value(std::move(rows));
      break;
    }

    case ScenarioKind::kDefenseClosedLoop: {
      require_cell_count(resolved.axes.placements.size(),
                         cell_results.size());
      // attacker_cores is placement-invariant; take it from the first
      // surviving cell. duty_comparison is defined on the FIRST
      // placement's arms, so only cell 0 can supply it.
      const json::Value* attacker_cores = nullptr;
      for (const json::Value& cell : cell_results) {
        attacker_cores = member(cell, "attacker_cores");
        if (attacker_cores != nullptr) break;
      }
      if (attacker_cores != nullptr) {
        envelope["attacker_cores"] = *attacker_cores;
      }
      json::Array arms;
      for (const json::Value& cell : cell_results) {
        append_elements(arms, cell, "arms");
      }
      envelope["arms"] = json::Value(std::move(arms));
      if (!cell_results.empty()) {
        if (const json::Value* comparison =
                member(cell_results.front(), "duty_comparison")) {
          envelope["duty_comparison"] = *comparison;
        }
      }
      break;
    }

    case ScenarioKind::kDefenseSweep:
    case ScenarioKind::kAttackComparison:
    case ScenarioKind::kConfigReport:
    case ScenarioKind::kBenchmarkReport:
    case ScenarioKind::kAreaPowerReport: {
      require_cell_count(1, cell_results.size());
      const json::Value& cell = cell_results.front();
      if (cell.is_object()) {
        for (const auto& [key, value] : cell.as_object()) {
          if (!is_envelope_key(key)) envelope[key] = value;
        }
      }
      break;
    }
  }

  return json::Value(std::move(envelope));
}

}  // namespace htpb::scenario
