// htpb_lint -- determinism & snapshot-safety static analysis.
//
//   htpb_lint [options] [paths...]
//
// Scans C++ sources (default: src/ tools/ bench/ under --root) for
// violations of the repo's determinism contract: results must be
// bit-identical across thread counts, fleet split/merge, and snapshot
// round-trips. See tools/lint/rules.hpp for the rule table and the
// suppression syntax, and docs/ARCHITECTURE.md §12 for the policy.
//
// Options:
//   --root DIR              repo root; scan paths and reported paths are
//                           relative to it (default: cwd)
//   --json PATH|-           write a machine-readable report
//   --suppressions FILE     extra suppression file (repeatable)
//   --no-default-suppressions
//                           ignore tools/htpb_lint_suppressions.txt
//   --list-rules            print the rule table and exit
//
// Exit status: 0 = clean, 1 = unsuppressed violations, 2 = bad usage,
// unreadable input, or malformed suppression (reasons are mandatory).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;
using htpb::json::Value;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--json PATH|-] [--suppressions FILE ...]\n"
      "           [--no-default-suppressions] [--list-rules] [paths...]\n",
      argv0);
  return 2;
}

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

std::string slurp(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  ok = in.good();
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative, '/'-separated form of `p` under `root`.
std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::vector<std::string> suppression_files;
  bool default_suppressions = true;
  std::vector<std::string> paths;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0) {
      root = next_arg(i, arg);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--suppressions") == 0) {
      suppression_files.emplace_back(next_arg(i, arg));
    } else if (std::strcmp(arg, "--no-default-suppressions") == 0) {
      default_suppressions = false;
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      for (const htpb::lint::RuleInfo& r : htpb::lint::rules()) {
        std::printf("%-18s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], arg);
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  // Collect the file set, sorted so reports and exit codes never depend
  // on directory-walk order.
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else if (fs::is_directory(full, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(full, ec)) {
        if (e.is_regular_file() && source_file(e.path())) {
          files.push_back(e.path());
        }
      }
      if (ec) {
        std::fprintf(stderr, "%s: cannot walk %s: %s\n", argv[0],
                     full.string().c_str(), ec.message().c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "%s: no such file or directory: %s\n", argv[0],
                   full.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::string> errors;
  std::vector<htpb::lint::FileSuppression> suppressions;
  if (default_suppressions) {
    const fs::path def = root / "tools" / "htpb_lint_suppressions.txt";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) {
      suppression_files.insert(suppression_files.begin(),
                               def.generic_string());
    }
  }
  for (const std::string& sf : suppression_files) {
    bool ok = false;
    const std::string body = slurp(sf, ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot read suppression file %s\n", argv[0],
                   sf.c_str());
      return 2;
    }
    const auto parsed =
        htpb::lint::parse_suppression_file(sf, body, errors);
    suppressions.insert(suppressions.end(), parsed.begin(), parsed.end());
  }

  std::vector<htpb::lint::FileModel> models;
  models.reserve(files.size());
  for (const fs::path& f : files) {
    bool ok = false;
    const std::string body = slurp(f, ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   f.string().c_str());
      return 2;
    }
    models.push_back(
        htpb::lint::build_model(rel_path(root, f), htpb::lint::lex(body)));
  }

  htpb::lint::LintResult result = htpb::lint::run_lint(models, suppressions);
  result.errors.insert(result.errors.end(), errors.begin(), errors.end());

  for (const htpb::lint::Violation& v : result.violations) {
    std::printf("%s:%d: [%s] %s\n  hint: %s\n", v.file.c_str(), v.line,
                v.rule.c_str(), v.message.c_str(), v.hint.c_str());
  }
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "%s: error: %s\n", argv[0], e.c_str());
  }
  std::fprintf(stderr,
               "%s: %d file%s scanned, %zu violation%s, %d suppressed\n",
               argv[0], result.files_scanned,
               result.files_scanned == 1 ? "" : "s",
               result.violations.size(),
               result.violations.size() == 1 ? "" : "s", result.suppressed);

  if (!json_path.empty()) {
    htpb::json::Object report;
    report["files_scanned"] =
        Value(static_cast<long long>(result.files_scanned));
    report["suppressed"] = Value(static_cast<long long>(result.suppressed));
    htpb::json::Array viols;
    for (const htpb::lint::Violation& v : result.violations) {
      htpb::json::Object o;
      o["file"] = Value(v.file);
      o["line"] = Value(static_cast<long long>(v.line));
      o["rule"] = Value(v.rule);
      o["message"] = Value(v.message);
      o["hint"] = Value(v.hint);
      viols.push_back(Value(std::move(o)));
    }
    report["violations"] = Value(std::move(viols));
    htpb::json::Array errs;
    for (const std::string& e : result.errors) errs.push_back(Value(e));
    report["errors"] = Value(std::move(errs));
    if (json_path == "-") {
      std::printf("%s\n",
                  htpb::json::dump(Value(std::move(report)), 2).c_str());
    } else {
      htpb::json::dump_file(Value(std::move(report)), json_path);
    }
  }

  if (!result.errors.empty()) return 2;
  return result.violations.empty() ? 0 : 1;
}
