// htpb_lint -- determinism & snapshot-safety static analysis.
//
//   htpb_lint [options] [paths...]
//
// Whole-program pass: scans C++ sources (default: src/ tools/ bench/
// tests/ examples/ under --root, minus the lint fixtures) into one
// ProjectModel -- include graph, class registry with cross-TU serializer
// bodies -- and runs the determinism contract over it: results must be
// bit-identical across thread counts, fleet split/merge, and snapshot
// round-trips. See tools/lint/rules.hpp for the rule table and the
// suppression syntax, and docs/ARCHITECTURE.md §12 for the policy.
//
// Options:
//   --root DIR              repo root; scan paths and reported paths are
//                           relative to it (default: cwd)
//   --json PATH|-           write a machine-readable report
//   --suppressions FILE     extra suppression file (repeatable)
//   --no-default-suppressions
//                           ignore tools/htpb_lint_suppressions.txt
//   --layers FILE           layer DAG for layer-violation/layer-cycle
//                           (default: tools/lint_layers.txt under --root
//                           when present; absent = layering skipped)
//   --cache-dir DIR         incremental cache: per-file summary shards
//                           keyed by content hash; a warm run replays
//                           the exact summaries a cold run builds, so
//                           reports are byte-identical either way
//   --baseline FILE         a previous --json report; findings listed
//                           there are silenced (counted separately) and
//                           only NEW findings fail the run
//   --fix                   insert suppression scaffolds (json-exempt /
//                           snapshot-exempt / allow) with FIXME reasons
//                           for a human to fill in; idempotent
//   --list-rules            print the rule table and exit
//
// Exit status: 0 = clean, 1 = unsuppressed violations, 2 = bad usage,
// unreadable input, or malformed suppression (reasons are mandatory).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "lint/fix.hpp"
#include "lint/graph.hpp"
#include "lint/project_model.hpp"
#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;
using htpb::json::Value;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--json PATH|-] [--suppressions FILE ...]\n"
      "           [--no-default-suppressions] [--layers FILE]\n"
      "           [--cache-dir DIR] [--baseline FILE] [--fix]\n"
      "           [--list-rules] [paths...]\n",
      argv0);
  return 2;
}

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" ||
         ext == ".hh";
}

std::string slurp(const fs::path& p, bool& ok) {
  std::ifstream in(p, std::ios::binary);
  ok = in.good();
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Repo-relative, '/'-separated form of `p` under `root`.
std::string rel_path(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  return (ec ? p : rel).generic_string();
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// The lint fixture files are deliberate rule violations; scanning them
/// as part of the tree would defeat their purpose.
bool fixture_path(const std::string& rel) {
  return rel.rfind("tests/lint/fixtures/", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string json_path;
  std::string layers_path;
  std::string cache_dir;
  std::string baseline_path;
  bool fix_mode = false;
  std::vector<std::string> suppression_files;
  bool default_suppressions = true;
  std::vector<std::string> paths;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0) {
      root = next_arg(i, arg);
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--suppressions") == 0) {
      suppression_files.emplace_back(next_arg(i, arg));
    } else if (std::strcmp(arg, "--no-default-suppressions") == 0) {
      default_suppressions = false;
    } else if (std::strcmp(arg, "--layers") == 0) {
      layers_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      cache_dir = next_arg(i, arg);
    } else if (std::strcmp(arg, "--baseline") == 0) {
      baseline_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--fix") == 0) {
      fix_mode = true;
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      for (const htpb::lint::RuleInfo& r : htpb::lint::rules()) {
        std::printf("%-22s %s\n", r.id, r.summary);
      }
      return 0;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], arg);
      return usage(argv[0]);
    } else {
      paths.emplace_back(arg);
    }
  }
  const bool default_paths = paths.empty();
  if (default_paths) paths = {"src", "tools", "bench", "tests", "examples"};

  // Collect the file set, sorted so reports and exit codes never depend
  // on directory-walk order.
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    const fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else if (fs::is_directory(full, ec)) {
      for (const auto& e : fs::recursive_directory_iterator(full, ec)) {
        if (e.is_regular_file() && source_file(e.path()) &&
            !fixture_path(rel_path(root, e.path()))) {
          files.push_back(e.path());
        }
      }
      if (ec) {
        std::fprintf(stderr, "%s: cannot walk %s: %s\n", argv[0],
                     full.string().c_str(), ec.message().c_str());
        return 2;
      }
    } else if (default_paths && p != "src") {
      // A default scan root that does not exist (a tree without bench/
      // or examples/) is fine; an explicit argument that does not is not.
      continue;
    } else {
      std::fprintf(stderr, "%s: no such file or directory: %s\n", argv[0],
                   full.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<std::string> errors;
  std::vector<htpb::lint::FileSuppression> suppressions;
  if (default_suppressions) {
    const fs::path def = root / "tools" / "htpb_lint_suppressions.txt";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) {
      suppression_files.insert(suppression_files.begin(),
                               def.generic_string());
    }
  }
  for (const std::string& sf : suppression_files) {
    bool ok = false;
    const std::string body = slurp(sf, ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot read suppression file %s\n", argv[0],
                   sf.c_str());
      return 2;
    }
    const auto parsed =
        htpb::lint::parse_suppression_file(sf, body, errors);
    suppressions.insert(suppressions.end(), parsed.begin(), parsed.end());
  }

  // Layer DAG: explicit flag, or the checked-in default when present.
  htpb::lint::LayerConfig layers;
  if (layers_path.empty()) {
    const fs::path def = root / "tools" / "lint_layers.txt";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) layers_path = def.generic_string();
  }
  if (!layers_path.empty()) {
    bool ok = false;
    const std::string body = slurp(layers_path, ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot read layers file %s\n", argv[0],
                   layers_path.c_str());
      return 2;
    }
    layers = htpb::lint::parse_layers(layers_path, body, errors);
  }

  // Build the project model, through the cache when one is configured.
  if (!cache_dir.empty()) {
    std::error_code ec;
    fs::create_directories(cache_dir, ec);
    if (ec) {
      std::fprintf(stderr, "%s: cannot create cache dir %s: %s\n", argv[0],
                   cache_dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  htpb::lint::ProjectModel pm;
  pm.files.reserve(files.size());
  int cache_hits = 0;
  int cache_misses = 0;
  for (const fs::path& f : files) {
    bool ok = false;
    const std::string body = slurp(f, ok);
    if (!ok) {
      std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                   f.string().c_str());
      return 2;
    }
    const std::string rel = rel_path(root, f);
    fs::path shard;
    if (!cache_dir.empty()) {
      shard = fs::path(cache_dir) /
              (hex16(htpb::lint::summary_cache_key(rel, body)) + ".json");
      bool shard_ok = false;
      const std::string shard_body = slurp(shard, shard_ok);
      htpb::lint::FileSummary cached;
      if (shard_ok &&
          htpb::lint::summary_from_json(shard_body, rel, cached)) {
        pm.files.push_back(std::move(cached));
        ++cache_hits;
        continue;
      }
      ++cache_misses;
    }
    htpb::lint::FileSummary s = htpb::lint::summarize(rel, body);
    if (!cache_dir.empty()) {
      std::ofstream out(shard, std::ios::binary | std::ios::trunc);
      if (out.good()) out << htpb::lint::summary_to_json(s) << '\n';
    }
    pm.files.push_back(std::move(s));
  }

  htpb::lint::LintOptions opts;
  if (layers.loaded) opts.layers = &layers;
  htpb::lint::LintResult result =
      htpb::lint::run_lint(pm, suppressions, opts);
  result.errors.insert(result.errors.end(), errors.begin(), errors.end());
  std::sort(result.errors.begin(), result.errors.end());

  // Baseline: silence findings already present in a previous report;
  // only new ones remain. Matching is by (file, rule, message) -- line
  // numbers shift too easily under unrelated edits.
  int baseline_matched = 0;
  if (!baseline_path.empty()) {
    std::map<std::string, int> known;
    try {
      const Value base = htpb::json::parse_file(baseline_path);
      const Value* viols = base.as_object().find("violations");
      if (viols == nullptr) {
        throw std::runtime_error("no \"violations\" array");
      }
      for (const Value& v : viols->as_array()) {
        const auto& o = v.as_object();
        const auto field = [&](const char* key) -> const std::string& {
          const Value* f = o.find(key);
          if (f == nullptr) {
            throw std::runtime_error(std::string("violation without \"") +
                                     key + "\"");
          }
          return f->as_string();
        };
        known[field("file") + "\x1f" + field("rule") + "\x1f" +
              field("message")] += 1;
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: cannot parse baseline %s: %s\n", argv[0],
                   baseline_path.c_str(), e.what());
      return 2;
    }
    std::vector<htpb::lint::Violation> fresh;
    for (htpb::lint::Violation& v : result.violations) {
      int& n = known[v.file + "\x1f" + v.rule + "\x1f" + v.message];
      if (n > 0) {
        --n;
        ++baseline_matched;
      } else {
        fresh.push_back(std::move(v));
      }
    }
    result.violations = std::move(fresh);
  }

  if (fix_mode) {
    const htpb::lint::FixResult fixed =
        htpb::lint::apply_fixes(root, result.violations);
    for (const std::string& e : fixed.errors) {
      std::fprintf(stderr, "%s: error: %s\n", argv[0], e.c_str());
    }
    for (const std::string& e : result.errors) {
      std::fprintf(stderr, "%s: error: %s\n", argv[0], e.c_str());
    }
    std::fprintf(stderr,
                 "%s: --fix inserted %d suppression scaffold%s in %d "
                 "file%s; fill in the FIXME reasons\n",
                 argv[0], fixed.insertions, fixed.insertions == 1 ? "" : "s",
                 fixed.files_changed, fixed.files_changed == 1 ? "" : "s");
    return !result.errors.empty() || !fixed.errors.empty() ? 2 : 0;
  }

  for (const htpb::lint::Violation& v : result.violations) {
    std::printf("%s:%d: [%s] %s\n  hint: %s\n", v.file.c_str(), v.line,
                v.rule.c_str(), v.message.c_str(), v.hint.c_str());
  }
  for (const std::string& e : result.errors) {
    std::fprintf(stderr, "%s: error: %s\n", argv[0], e.c_str());
  }
  std::fprintf(stderr,
               "%s: %d file%s scanned, %zu violation%s, %d suppressed, "
               "%d baseline\n",
               argv[0], result.files_scanned,
               result.files_scanned == 1 ? "" : "s",
               result.violations.size(),
               result.violations.size() == 1 ? "" : "s", result.suppressed,
               baseline_matched);
  if (!cache_dir.empty()) {
    std::fprintf(stderr, "%s: cache: %d hit%s, %d miss%s\n", argv[0],
                 cache_hits, cache_hits == 1 ? "" : "s", cache_misses,
                 cache_misses == 1 ? "" : "es");
  }

  if (!json_path.empty()) {
    htpb::json::Object report;
    report["files_scanned"] =
        Value(static_cast<long long>(result.files_scanned));
    report["suppressed"] = Value(static_cast<long long>(result.suppressed));
    report["baseline_matched"] = Value(baseline_matched);
    htpb::json::Array viols;
    for (const htpb::lint::Violation& v : result.violations) {
      htpb::json::Object o;
      o["file"] = Value(v.file);
      o["line"] = Value(static_cast<long long>(v.line));
      o["rule"] = Value(v.rule);
      o["message"] = Value(v.message);
      o["hint"] = Value(v.hint);
      viols.push_back(Value(std::move(o)));
    }
    report["violations"] = Value(std::move(viols));
    htpb::json::Array errs;
    for (const std::string& e : result.errors) errs.push_back(Value(e));
    report["errors"] = Value(std::move(errs));
    if (json_path == "-") {
      std::printf("%s\n",
                  htpb::json::dump(Value(std::move(report)), 2).c_str());
    } else {
      htpb::json::dump_file(Value(std::move(report)), json_path);
    }
  }

  if (!result.errors.empty()) return 2;
  return result.violations.empty() ? 0 : 1;
}
