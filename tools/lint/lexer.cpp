#include "lint/lexer.hpp"

#include <cctype>

namespace htpb::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void append_comment(LexedFile& out, int line, const std::string& text) {
  std::string& slot = out.comments[line];
  if (!slot.empty()) slot += ' ';
  slot += text;
}

}  // namespace

LexedFile lex(const std::string& text) {
  LexedFile out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  const auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor line: skip to EOL, honoring backslash continuations.
    // `#include "..."` directives are recorded on the way past -- they
    // are the edges of the layering / include-cycle graph.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::size_t j = i;
      while (j < n) {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] == '\n') {
          j += 2;
          continue;
        }
        if (text[j] == '\n') break;
        ++j;
      }
      const std::string directive = text.substr(i, j - i);
      if (directive.find("include") != std::string::npos) {
        const std::size_t open = directive.find('"');
        const std::size_t close =
            open == std::string::npos ? std::string::npos
                                      : directive.find('"', open + 1);
        if (close != std::string::npos) {
          out.includes.push_back(
              {start_line, directive.substr(open + 1, close - open - 1)});
        }
      }
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;

    // Comments: recorded per-line, never tokenized.
    if (c == '/' && peek(1) == '/') {
      const int start = line;
      std::size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      append_comment(out, start, text.substr(i + 2, j - (i + 2)));
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start = line;
      std::size_t j = i + 2;
      std::string body;
      while (j < n && !(text[j] == '*' && j + 1 < n && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        body += text[j];
        ++j;
      }
      append_comment(out, start, body);
      i = j < n ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"tag( ... )tag".
    if (c == 'R' && peek(1) == '"' && ident_start('R')) {
      std::size_t j = i + 2;
      std::string tag;
      while (j < n && text[j] != '(' && text[j] != '\n') tag += text[j++];
      const std::string close = ")" + tag + "\"";
      const std::size_t end = text.find(close, j);
      for (std::size_t k = j; k < (end == std::string::npos ? n : end); ++k) {
        if (text[k] == '\n') ++line;
      }
      out.tokens.push_back({TokKind::kPunct, "\"raw\"", line});
      i = end == std::string::npos ? n : end + close.size();
      continue;
    }

    // String / char literals collapse to a placeholder token.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;  // unterminated; keep line counts sane
        ++j;
      }
      out.tokens.push_back(
          {TokKind::kPunct, quote == '"' ? "\"str\"" : "'chr'", line});
      i = j < n ? j + 1 : n;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      // Good enough for pattern matching: digits, dots, exponent signs,
      // hex letters, digit separators, suffixes. The digit separator
      // must be eaten HERE: treating the ' of 300'000 as a char-literal
      // open quote swallows everything up to the next apostrophe in the
      // file and silently hides whole functions from the rules.
      while (j < n &&
             (ident_char(text[j]) || text[j] == '.' ||
              (text[j] == '\'' && j + 1 < n &&
               std::isalnum(static_cast<unsigned char>(text[j + 1]))) ||
              ((text[j] == '+' || text[j] == '-') && j > i &&
               (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation. Keep whole only what the matchers must not see split;
    // everything else is a single character (">>" intentionally splits).
    const char d = peek(1);
    if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
        (c == '<' && d == '=') || (c == '>' && d == '=') ||
        (c == '<' && d == '<') || (c == '=' && d == '=') ||
        (c == '!' && d == '=') || (c == '&' && d == '&') ||
        (c == '|' && d == '|')) {
      out.tokens.push_back({TokKind::kPunct, std::string{c, d}, line});
      i += 2;
      continue;
    }
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  out.last_line = line;
  return out;
}

}  // namespace htpb::lint
