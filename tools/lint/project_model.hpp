// Whole-program layer of htpb_lint.
//
// A FileSummary is everything the rule engine needs to know about one
// source file, and nothing else: no token stream, no comment text. It is
// a pure function of (path, content) with a versioned JSON round-trip,
// which makes the incremental cache correct by construction -- a warm
// run replays the exact summaries a cold run would have built, so the
// two produce byte-identical reports. Anything token-level (the
// nondet-call / ptr-key-container matchers, the suppression-marker scan)
// runs at summarize() time and lands in the summary as precomputed
// findings and marker tables.
//
// A ProjectModel is just the ordered list of summaries; the cross-file
// joins (serializer bodies by class, include graph, header/source
// unordered-name union) are built where they are consumed, in
// rules.cpp / graph.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/model.hpp"

namespace htpb::lint {

/// A per-file finding precomputed by summarize(): the token-level rules
/// whose evidence would otherwise require shipping the token stream
/// through the cache. Suppression is NOT applied here -- the engine
/// filters against markers/suppressions like any other finding, so
/// cached summaries stay valid when a suppression file changes.
struct TokenFinding {
  int line = 0;
  std::string rule;
  std::string message;
};

/// Suppression markers of one file, pre-validated. Malformed markers are
/// configuration errors (already "path:line: ..."-prefixed) even when no
/// finding would have consulted them.
struct MarkerSet {
  /// line -> rule ids from an inline allow(...) marker.
  std::map<int, std::set<std::string>> allows;
  std::set<int> snapshot_exempt;  // `// snapshot-exempt: reason` lines
  std::set<int> json_exempt;      // `// json-exempt: reason` lines
  std::vector<std::string> errors;
};

struct FileSummary {
  std::string path;  // repo-relative, '/'-separated
  std::vector<Include> includes;
  std::vector<ClassInfo> classes;
  SerializerBodies bodies;
  std::map<std::string, std::set<std::string>> ctor_inits;
  std::set<std::string> unordered_names;
  /// Names declared with float/double type; the float-unordered-reduce
  /// rule only fires when the accumulator is provably floating-point.
  std::set<std::string> float_names;
  std::vector<RangeFor> range_fors;
  std::vector<RngSite> rng_sites;
  std::vector<ReduceSite> reduce_sites;
  MarkerSet markers;
  std::vector<TokenFinding> token_findings;
};

struct ProjectModel {
  std::vector<FileSummary> files;  // sorted by path by the driver
};

/// Builds the summary of one file from its content. Pure: same
/// (path, content) -> same summary, always.
FileSummary summarize(const std::string& path, const std::string& content);

/// Versioned JSON round-trip. `summary_from_json` returns false (and
/// leaves `out` untouched) for malformed input or a format-version /
/// path mismatch -- the cache treats that as a miss, never an error.
std::string summary_to_json(const FileSummary& s);
bool summary_from_json(const std::string& body, const std::string& path,
                       FileSummary& out);

/// Cache shard key: FNV-1a64 over the summary format version, the path
/// and the file content. Any change to the summary schema bumps the
/// version and orphans old shards instead of misreading them.
std::uint64_t summary_cache_key(const std::string& path,
                                const std::string& content);

}  // namespace htpb::lint
