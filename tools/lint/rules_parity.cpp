// spec-field-parity: the serialization mirror of snapshot-complete.
//
// For every class that has both a to_json and a from_json implementation
// anywhere in the project (inline, out-of-class `X::to_json`, or the
// free-function `x_to_json(const X&)` / `X x_from_json(...)` idiom),
// every data member must be referenced in BOTH bodies. A member written
// by to_json but never read back silently resets on a fleet round-trip;
// a member serialized by neither silently does not survive at all --
// both are exactly the class of bug that cost a bisect through
// htpb_diff output before this rule existed. `// json-exempt: <reason>`
// on the declaration marks deliberate runtime-only members.
#include "lint/rules.hpp"

namespace htpb::lint {

namespace {

const char* parity_hint() {
  for (const RuleInfo& r : rules()) {
    if (std::string("spec-field-parity") == r.id) return r.hint;
  }
  return "";
}

}  // namespace

void check_spec_field_parity(const FileSummary& f, const ProjectJoin& join,
                             std::vector<Violation>& out) {
  for (const ClassInfo& c : f.classes) {
    const auto to_it = join.to_json_bodies.find(c.name);
    const auto from_it = join.from_json_bodies.find(c.name);
    if (to_it == join.to_json_bodies.end() || to_it->second.empty() ||
        from_it == join.from_json_bodies.end() || from_it->second.empty()) {
      continue;  // parity only applies to classes with both sides
    }
    for (const Member& mem : c.members) {
      // A body referencing `x` covers member `x_`: the accessor / Raw
      // idiom (RunningStat::raw() exposes n_ as .n) serializes through
      // the public name of the private member.
      const std::string bare = !mem.name.empty() && mem.name.back() == '_'
                                   ? mem.name.substr(0, mem.name.size() - 1)
                                   : mem.name;
      const auto in = [&](const std::set<std::string>& body) {
        return body.count(mem.name) > 0 || body.count(bare) > 0;
      };
      const bool in_to = in(to_it->second);
      const bool in_from = in(from_it->second);
      if (in_to && in_from) continue;
      std::string message;
      if (in_to) {
        message = "member '" + mem.name + "' of '" + c.name +
                  "' is written by to_json but never read back in "
                  "from_json (silently resets on a round-trip)";
      } else if (in_from) {
        message = "member '" + mem.name + "' of '" + c.name +
                  "' is read by from_json but never written by to_json";
      } else {
        message = "member '" + mem.name + "' of '" + c.name +
                  "' appears in neither to_json nor from_json";
      }
      out.push_back(Violation{f.path, mem.line, "spec-field-parity",
                              std::move(message), parity_hint()});
    }
  }
}

}  // namespace htpb::lint
