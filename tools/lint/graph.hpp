// Layering over the include graph.
//
// tools/lint_layers.txt declares the module DAG as layers, bottom-up:
// one line per layer, modules separated by spaces. A module may include
// itself and any module on a strictly lower layer; a same-layer
// cross-module include or an upward include is a `layer-violation`, and
// any cycle among project includes (which the layer rule alone cannot
// see when it runs through an unmapped file) is a `layer-cycle`,
// reported with the offending #include chain.
//
// Modules are directory-derived: src/<m>/... -> m, tools/lint/... ->
// lint, tools/... -> tools, bench/ tests/ examples/ -> themselves.
// Files outside those roots (lint fixtures run with --root pointing at
// the fixture dir) have no module and never participate in layering --
// they still participate in cycle detection when their includes resolve.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/project_model.hpp"

namespace htpb::lint {

struct LayerConfig {
  /// layer index by module name; lower = closer to the bottom.
  std::map<std::string, int> layer_of;
  bool loaded = false;
};

/// Parses a layers file body. Malformed lines (duplicate module) land in
/// `errors`; '#' starts a comment.
LayerConfig parse_layers(const std::string& path, const std::string& body,
                         std::vector<std::string>& errors);

/// Module of a repo-relative path, "" when unmapped.
std::string module_of(const std::string& path);

/// A layering finding, same shape the engine turns into a Violation.
struct LayerFinding {
  std::string file;
  int line = 0;
  std::string rule;  // "layer-violation" or "layer-cycle"
  std::string message;
};

/// Checks every resolved project include against the layer DAG and the
/// include graph for cycles. A module present in the tree but missing
/// from the layers file is a configuration error: the DAG must stay an
/// exhaustive statement of the architecture.
std::vector<LayerFinding> check_layering(const ProjectModel& pm,
                                         const LayerConfig& layers,
                                         std::vector<std::string>& errors);

}  // namespace htpb::lint
