// seed-provenance: every stochastic entry point derives from spec.seed.
//
// An Rng (or std::mt19937) constructed from a literal or from an
// expression with no visible seed in it starts a stream the spec cannot
// replay -- the PR 5 seed audit found exactly such strays, and this rule
// keeps them out. "Visibly derived" is lexical: some identifier in the
// constructor argument contains "seed" or "rng" (case-insensitive),
// which matches every legitimate derivation in the tree
// (`spec.seed + s*77 + h`, `splitmix64(config.backoff_seed ^ h)`,
// `stream_rng(...)`) and none of the literals. Test code is out of
// scope (run_lint's scope gate); demos that deliberately fix a seed
// carry an inline allow with the reason.
#include "lint/rules.hpp"

namespace htpb::lint {

namespace {

const char* seed_hint() {
  for (const RuleInfo& r : rules()) {
    if (std::string("seed-provenance") == r.id) return r.hint;
  }
  return "";
}

}  // namespace

void check_seed_provenance(const FileSummary& f, std::vector<Violation>& out) {
  for (const RngSite& site : f.rng_sites) {
    if (site.seed_derived) continue;
    out.push_back(Violation{
        f.path, site.line, "seed-provenance",
        "Rng constructed from '" + site.args +
            "', which is not visibly derived from a seed",
        seed_hint()});
  }
}

}  // namespace htpb::lint
