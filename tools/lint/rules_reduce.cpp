// float-unordered-reduce: floating-point sums must not follow an
// implementation-defined iteration order.
//
// `a + b + c` and `c + b + a` differ in the last ulp often enough that a
// sum taken while iterating a std::unordered_{map,set} breaks the
// repo's bit-identity contract even when every addend is identical.
// Fires on `+=` inside a range-for over an unordered container and on
// std::accumulate/std::reduce over one, but ONLY with floating-point
// evidence: the accumulator is declared float/double, or the
// accumulate/reduce init argument is a floating literal. Integer
// accumulation is associative-commutative exactly and stays silent --
// which is also why this is a separate rule from unordered-iter: an
// order-insensitive integer fold earns an unordered-iter allow, but the
// same allow must not blanket a float sum added later.
#include "lint/rules.hpp"

namespace htpb::lint {

namespace {

const char* reduce_hint() {
  for (const RuleInfo& r : rules()) {
    if (std::string("float-unordered-reduce") == r.id) return r.hint;
  }
  return "";
}

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

bool is_header(const std::string& path) {
  return path.size() >= 2 && (path.rfind(".hpp") == path.size() - 4 ||
                              path.rfind(".hh") == path.size() - 3 ||
                              path.rfind(".h") == path.size() - 2);
}

}  // namespace

void check_float_unordered_reduce(const FileSummary& f,
                                  const ProjectJoin& join,
                                  std::vector<Violation>& out) {
  std::set<std::string> unordered = f.unordered_names;
  std::set<std::string> floats = f.float_names;
  if (!is_header(f.path)) {
    const auto it = join.header_by_stem.find(stem_of(f.path));
    if (it != join.header_by_stem.end()) {
      unordered.insert(it->second->unordered_names.begin(),
                       it->second->unordered_names.end());
      floats.insert(it->second->float_names.begin(),
                    it->second->float_names.end());
    }
  }
  for (const ReduceSite& site : f.reduce_sites) {
    if (!unordered.count(site.target)) continue;
    const bool floating =
        site.float_evidence || (!site.acc.empty() && floats.count(site.acc));
    if (!floating) continue;
    const std::string how =
        site.op == "+=" ? "'" + site.acc + " += ...' inside iteration"
                        : "std::" + site.op;
    out.push_back(Violation{
        f.path, site.line, "float-unordered-reduce",
        "floating-point accumulation (" + how +
            ") over unordered container '" + site.target +
            "' sums in implementation-defined order",
        reduce_hint()});
  }
}

}  // namespace htpb::lint
