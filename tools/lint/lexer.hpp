// Minimal C++ tokenizer for htpb_lint. Not a compiler front end: it
// strips comments, string/char literals, and preprocessor lines, and
// yields a flat token stream that the rule engine pattern-matches. The
// only multi-character punctuators kept whole are the ones whose split
// forms would confuse the matchers ("::" vs ":" in range-for detection,
// "->" vs ">" in template-argument tracking, "<=" / ">=" / "<<" so a
// comparison or stream insert does not read as a template bracket).
// ">>" is deliberately split into two ">" tokens, C++11-style, so nested
// template argument lists close correctly.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace htpb::lint {

enum class TokKind { kIdent, kNumber, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 1;
};

/// One `#include "..."` directive. Only quote-form includes are kept:
/// they are the project-internal edges the layering and cycle rules
/// reason about; angle-bracket system headers never participate.
struct Include {
  int line = 1;
  std::string target;  // the text between the quotes, e.g. "common/json.hpp"
};

struct LexedFile {
  std::vector<Token> tokens;
  /// Comment text per line, concatenated when a line holds several.
  /// A block comment is recorded on the line it starts on. Used for the
  /// inline-suppression and snapshot-exempt markers, which are
  /// comment-level syntax invisible to the tokens.
  std::map<int, std::string> comments;
  std::vector<Include> includes;
  int last_line = 1;
};

/// Tokenizes `text`. Never throws on malformed input: an unterminated
/// literal or comment simply ends at EOF (the lint degrades to fewer
/// matches, never to a crash).
LexedFile lex(const std::string& text);

}  // namespace htpb::lint
