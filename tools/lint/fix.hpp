// --fix: mechanical suppression scaffolding.
//
// For every finding, inserts the matching suppression marker on the line
// above, indented like the flagged line, with a FIXME reason a human
// must replace during review:
//   snapshot-complete  -> a snapshot-exempt marker with a FIXME reason
//   spec-field-parity  -> a json-exempt marker with a FIXME reason
//   everything else    -> an allow(rule, ...) marker with a FIXME reason
// Several rules firing on one line coalesce into one allow(...). The
// pass is idempotent by construction: after one application every
// finding is suppressed, so a second run has nothing to insert. It
// never deletes or rewrites existing code lines.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace htpb::lint {

struct FixResult {
  int insertions = 0;
  int files_changed = 0;
  std::vector<std::string> errors;  // unreadable/unwritable files
};

/// Applies scaffolds for `violations` to the files under `root`
/// (violation paths are repo-relative). Layer findings are skipped:
/// an architecture violation has no mechanical fix.
FixResult apply_fixes(const std::filesystem::path& root,
                      const std::vector<Violation>& violations);

}  // namespace htpb::lint
