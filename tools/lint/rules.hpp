// The determinism-contract rules and the suppression machinery.
//
// Rule ids (stable; used by suppressions, the JSON report, and CI):
//   unordered-iter     range-for over a std::unordered_{map,set} --
//                      iteration order is implementation-defined, so any
//                      result derived from it breaks bit-identity
//   nondet-call        rand()/srand()/std::random_device/time()/clock()/
//                      <chrono> ::now() -- nondeterministic inputs
//   ptr-key-container  std::map/std::set keyed by a pointer -- ordering
//                      follows allocation addresses, different every run
//   uninit-pod-member  uninitialized fundamental-type data member in a
//                      snapshot-bearing class -- restores to garbage
//   snapshot-complete  data member of a class declaring save_state/
//                      load_state that is never referenced in either
//                      implementation and not marked snapshot-exempt
//
// Suppression syntax, reasons mandatory. Inline, on the same line or
// the line above the finding (the example below is itself well-formed,
// because this comment is scanned too -- rule ids are comma-separated):
//     // htpb-lint: allow(unordered-iter, nondet-call) explain why here
//   member exemption for snapshot-complete, on the declaration line or
//   the line above:
//     // snapshot-exempt: <reason>
//   repo suppression file (tools/htpb_lint_suppressions.txt), one per
//   line; `path` is repo-relative, a trailing '/' makes it a prefix:
//     rule-id  path  <reason>
#pragma once

#include <string>
#include <vector>

#include "lint/model.hpp"

namespace htpb::lint {

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* hint;
};

/// The rule table, in reporting order.
const std::vector<RuleInfo>& rules();

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
};

struct FileSuppression {
  std::string rule;
  std::string path;  // exact repo-relative path, or prefix if ends in '/'
  std::string reason;
  int line = 0;  // line in the suppression file, for diagnostics
};

struct LintResult {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  int suppressed = 0;
  int files_scanned = 0;
  /// Configuration problems (malformed suppression, missing reason):
  /// non-empty means the run is invalid, exit 2 regardless of findings.
  std::vector<std::string> errors;
};

/// Parses a suppression file body. Malformed lines land in `errors`.
std::vector<FileSuppression> parse_suppression_file(
    const std::string& path, const std::string& body,
    std::vector<std::string>& errors);

/// Runs every rule over the models. `models` must carry repo-relative
/// '/'-separated paths; .cpp files see the unordered-container names of
/// the same-stem header model when both were scanned.
LintResult run_lint(const std::vector<FileModel>& models,
                    const std::vector<FileSuppression>& suppressions);

}  // namespace htpb::lint
