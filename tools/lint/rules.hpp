// The determinism-contract rules and the suppression machinery.
//
// Rule ids (stable; used by suppressions, the JSON report, and CI):
//   unordered-iter     range-for over a std::unordered_{map,set} --
//                      iteration order is implementation-defined, so any
//                      result derived from it breaks bit-identity
//   nondet-call        rand()/srand()/std::random_device/time()/clock()/
//                      <chrono> ::now() -- nondeterministic inputs
//   ptr-key-container  std::map/std::set keyed by a pointer -- ordering
//                      follows allocation addresses, different every run
//   uninit-pod-member  uninitialized fundamental-type data member in a
//                      snapshot-bearing class -- restores to garbage
//   snapshot-complete  data member of a class declaring save_state/
//                      load_state that is never referenced in either
//                      implementation and not marked snapshot-exempt
//   spec-field-parity  data member of a class with both to_json and
//                      from_json that is missing from either body and
//                      not marked json-exempt -- the field silently
//                      resets on a serialize/parse round-trip
//   seed-provenance    Rng/std::mt19937 constructed from an expression
//                      not visibly derived from a seed -- breaks the
//                      "every stochastic entry point derives from
//                      spec.seed" audit
//   float-unordered-reduce
//                      floating-point accumulation (+=, accumulate,
//                      reduce) over unordered-container iteration --
//                      the summation order, and therefore the bits,
//                      vary run to run
//   layer-violation    #include pointing at the same or a higher layer
//                      of the module DAG (tools/lint_layers.txt)
//   layer-cycle        cycle among project #includes
//
// Suppression syntax, reasons mandatory. Inline, on the same line or
// the line above the finding (the example below is itself well-formed,
// because this comment is scanned too -- rule ids are comma-separated):
//     // htpb-lint: allow(unordered-iter, nondet-call) explain why here
//   member exemption for snapshot-complete, on the declaration line or
//   the line above:
//     // snapshot-exempt: <reason>
//   member exemption for spec-field-parity, same placement:
//     // json-exempt: <reason>
//   repo suppression file (tools/htpb_lint_suppressions.txt), one per
//   line; `path` is repo-relative, a trailing '/' makes it a prefix:
//     rule-id  path  <reason>
#pragma once

#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/project_model.hpp"

namespace htpb::lint {

struct RuleInfo {
  const char* id;
  const char* summary;
  const char* hint;
};

/// The rule table, in reporting order.
const std::vector<RuleInfo>& rules();

struct Violation {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
};

struct FileSuppression {
  std::string rule;
  std::string path;  // exact repo-relative path, or prefix if ends in '/'
  std::string reason;
  int line = 0;  // line in the suppression file, for diagnostics
};

struct LintResult {
  std::vector<Violation> violations;  // sorted by (file, line, rule)
  int suppressed = 0;
  int files_scanned = 0;
  /// Configuration problems (malformed suppression, missing reason,
  /// module absent from the layers file): non-empty means the run is
  /// invalid, exit 2 regardless of findings.
  std::vector<std::string> errors;
};

/// Parses a suppression file body. Malformed lines land in `errors`.
std::vector<FileSuppression> parse_suppression_file(
    const std::string& path, const std::string& body,
    std::vector<std::string>& errors);

/// Cross-file joins the whole-program rule families consume. Built once
/// per run over the non-test summaries (a test must never "complete" a
/// production serializer).
struct ProjectJoin {
  std::map<std::string, std::set<std::string>> snapshot_bodies;
  std::map<std::string, std::set<std::string>> to_json_bodies;
  std::map<std::string, std::set<std::string>> from_json_bodies;
  std::map<std::string, std::set<std::string>> ctor_inits;
  /// Header summary by path stem, so X.cpp sees the unordered/float
  /// names X.hpp declares.
  std::map<std::string, const FileSummary*> header_by_stem;
};

/// The per-family passes (one translation unit each; see
/// rules_parity.cpp, rules_seed.cpp, rules_reduce.cpp and graph.cpp for
/// layering). They emit raw findings; run_lint applies suppressions.
void check_spec_field_parity(const FileSummary& f, const ProjectJoin& join,
                             std::vector<Violation>& out);
void check_seed_provenance(const FileSummary& f, std::vector<Violation>& out);
void check_float_unordered_reduce(const FileSummary& f,
                                  const ProjectJoin& join,
                                  std::vector<Violation>& out);

/// Options for a run. `layers` enables the layering family; null skips
/// it (fixture runs outside a configured tree).
struct LintOptions {
  const LayerConfig* layers = nullptr;
};

/// Runs every rule over the project. Summaries must carry repo-relative
/// '/'-separated paths and arrive sorted by path. Paths under tests/
/// participate only in the include graph and layering; the per-file
/// determinism families do not apply to test code.
LintResult run_lint(const ProjectModel& pm,
                    const std::vector<FileSuppression>& suppressions,
                    const LintOptions& opts = {});

}  // namespace htpb::lint
