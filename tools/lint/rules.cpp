#include "lint/rules.hpp"

#include <algorithm>
#include <sstream>

namespace htpb::lint {

namespace {

constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kUninitPod = "uninit-pod-member";
constexpr const char* kSnapshotComplete = "snapshot-complete";

const std::set<std::string>& fundamental_types() {
  // Fundamental + <cstdint> names, plus the repo's own trivially-copyable
  // aliases from common/types.hpp. A member of one of these types left
  // without an initializer in a snapshot-bearing class restores from
  // whatever the allocator handed out.
  static const std::set<std::string> t = {
      "bool",     "char",     "char8_t",   "char16_t", "char32_t",
      "wchar_t",  "short",    "int",       "long",     "unsigned",
      "signed",   "float",    "double",    "size_t",   "ptrdiff_t",
      "int8_t",   "int16_t",  "int32_t",   "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t",  "intptr_t", "uintptr_t",
      "Cycle",    "NodeId",   "AppId",     "PacketId"};
  return t;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool inline_allowed(const MarkerSet& mk, int line, const std::string& rule) {
  for (const int l : {line, line - 1}) {
    const auto it = mk.allows.find(l);
    if (it != mk.allows.end() && it->second.count(rule)) return true;
  }
  return false;
}

bool line_marked(const std::set<int>& lines, int line) {
  return lines.count(line) > 0 || lines.count(line - 1) > 0;
}

bool file_suppressed(const std::vector<FileSuppression>& sups,
                     const Violation& v) {
  for (const FileSuppression& s : sups) {
    if (s.rule != v.rule) continue;
    if (s.path == v.file) return true;
    if (!s.path.empty() && s.path.back() == '/' &&
        v.file.rfind(s.path, 0) == 0) {
      return true;
    }
  }
  return false;
}

const char* rule_hint(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (id == r.id) return r.hint;
  }
  return "";
}

void emit(std::vector<Violation>& out, const std::string& file, int line,
          const char* rule, std::string message) {
  out.push_back(Violation{file, line, rule, std::move(message),
                          rule_hint(rule)});
}

// ---------------------------------------------------------------------

void check_unordered_iter(const FileSummary& f,
                          const std::set<std::string>& names,
                          std::vector<Violation>& out) {
  for (const RangeFor& rf : f.range_fors) {
    if (rf.target.empty() || !names.count(rf.target)) continue;
    emit(out, f.path, rf.line, kUnorderedIter,
         "range-for over unordered container '" + rf.target + "'");
  }
}

void check_members(const FileSummary& f, const ProjectJoin& join,
                   std::vector<Violation>& out) {
  for (const ClassInfo& c : f.classes) {
    if (!c.declares_save && !c.declares_load) continue;
    const auto body_it = join.snapshot_bodies.find(c.name);
    const bool have_impl =
        body_it != join.snapshot_bodies.end() && !body_it->second.empty();
    const auto init_it = join.ctor_inits.find(c.name);
    for (const Member& mem : c.members) {
      // uninit-pod-member: trivial type, no initializer.
      std::vector<std::string> type;
      bool ref = false;
      for (const std::string& t : mem.type_tokens) {
        if (t == "&") ref = true;
        if (t == "std" || t == "::" || t == "const" || t == "volatile") {
          continue;
        }
        type.push_back(t);
      }
      const bool ptr = !type.empty() && type.back() == "*";
      bool pod = !type.empty() && !ref;
      for (const std::string& t : type) {
        if (t != "*" && !fundamental_types().count(t)) pod = false;
      }
      const bool ctor_inited = init_it != join.ctor_inits.end() &&
                               init_it->second.count(mem.name) > 0;
      if (!mem.has_init && !ctor_inited && !ref && (pod || ptr)) {
        emit(out, f.path, mem.line, kUninitPod,
             "member '" + mem.name + "' of snapshot class '" + c.name +
                 "' has no initializer");
      }

      // snapshot-complete: the member must be referenced by the class's
      // save_state/load_state bodies (wherever they live).
      if (!have_impl) continue;
      if (body_it->second.count(mem.name)) continue;
      emit(out, f.path, mem.line, kSnapshotComplete,
           "member '" + mem.name + "' of snapshot class '" + c.name +
               "' is not referenced in save_state/load_state");
    }
  }
}

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

bool is_header(const std::string& path) {
  return path.size() >= 2 && (path.rfind(".hpp") == path.size() - 4 ||
                              path.rfind(".hh") == path.size() - 3 ||
                              path.rfind(".h") == path.size() - 2);
}

/// Test code is scanned (the include graph and layering need it) but the
/// per-file determinism families do not apply there: a test may
/// legitimately iterate an unordered container to assert its contents or
/// seed an Rng with a literal.
bool test_scope(const std::string& path) {
  return path.rfind("tests/", 0) == 0;
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> r = {
      {kUnorderedIter,
       "range-for over std::unordered_map/unordered_set",
       "collect keys, sort, iterate the sorted list (see "
       "power/defense.cpp sorted_nodes) or use an ordered container"},
      {"nondet-call",
       "rand()/random_device/time()/clock()/::now() outside whitelisted "
       "timing code",
       "derive randomness from common::Rng seeded by the spec; route "
       "timing through a suppressed timing helper"},
      {"ptr-key-container",
       "std::map/std::set keyed by a pointer",
       "key by a stable id (NodeId, PacketId, index) instead of an "
       "allocation address"},
      {kUninitPod,
       "uninitialized fundamental-type member in a snapshot-bearing class",
       "give the member a default initializer so a restored object never "
       "carries garbage"},
      {kSnapshotComplete,
       "data member missing from save_state/load_state",
       "serialize the member, or mark the declaration "
       "\"// snapshot-exempt: <reason>\" if it is derived or transient"},
      {"spec-field-parity",
       "data member missing from to_json/from_json of its class",
       "serialize the member on both sides, or mark the declaration "
       "\"// json-exempt: <reason>\" if it is runtime-only plumbing"},
      {"seed-provenance",
       "Rng/std::mt19937 seeded from a literal or non-seed expression",
       "derive the constructor argument from spec.seed (directly or via "
       "splitmix64 of a *seed* value) so the stream replays from the spec"},
      {"float-unordered-reduce",
       "floating-point accumulation over unordered-container iteration",
       "sum over a sorted copy of the keys so the addition order is "
       "stable; integer accumulation is exempt already"},
      {"layer-violation",
       "#include pointing at the same or a higher layer of the module DAG",
       "depend only on strictly lower layers of tools/lint_layers.txt; "
       "move shared code down or invert the dependency"},
      {"layer-cycle",
       "cycle among project #includes",
       "break the cycle with a forward declaration or by extracting the "
       "shared piece into a lower layer"},
  };
  return r;
}

std::vector<FileSuppression> parse_suppression_file(
    const std::string& path, const std::string& body,
    std::vector<std::string>& errors) {
  std::vector<FileSuppression> out;
  std::stringstream ss(body);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::stringstream fields(t);
    FileSuppression s;
    s.line = lineno;
    fields >> s.rule >> s.path;
    std::getline(fields, s.reason);
    s.reason = trim(s.reason);
    const std::string where = path + ":" + std::to_string(lineno);
    bool known = false;
    for (const RuleInfo& r : rules()) known |= s.rule == r.id;
    if (!known) {
      errors.push_back(where + ": unknown rule id \"" + s.rule + "\"");
      continue;
    }
    if (s.path.empty()) {
      errors.push_back(where + ": suppression needs a path");
      continue;
    }
    if (s.reason.empty()) {
      errors.push_back(where + ": suppression for " + s.rule + " on " +
                       s.path + " needs a reason");
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

LintResult run_lint(const ProjectModel& pm,
                    const std::vector<FileSuppression>& suppressions,
                    const LintOptions& opts) {
  LintResult result;
  result.files_scanned = static_cast<int>(pm.files.size());

  ProjectJoin join;
  std::map<std::string, const MarkerSet*> markers_by_file;
  for (const FileSummary& f : pm.files) {
    markers_by_file[f.path] = &f.markers;
    result.errors.insert(result.errors.end(), f.markers.errors.begin(),
                         f.markers.errors.end());
    if (is_header(f.path)) join.header_by_stem[stem_of(f.path)] = &f;
    if (test_scope(f.path)) continue;
    const auto merge =
        [](std::map<std::string, std::set<std::string>>& into,
           const std::map<std::string, std::set<std::string>>& from) {
          for (const auto& [cls, idents] : from) {
            into[cls].insert(idents.begin(), idents.end());
          }
        };
    merge(join.snapshot_bodies, f.bodies.snapshot);
    merge(join.to_json_bodies, f.bodies.to_json);
    merge(join.from_json_bodies, f.bodies.from_json);
    merge(join.ctor_inits, f.ctor_inits);
  }

  std::vector<Violation> raw;
  for (const FileSummary& f : pm.files) {
    if (test_scope(f.path)) continue;

    for (const TokenFinding& tf : f.token_findings) {
      emit(raw, f.path, tf.line, tf.rule.c_str(), tf.message);
    }

    std::set<std::string> unordered = f.unordered_names;
    if (!is_header(f.path)) {
      const auto it = join.header_by_stem.find(stem_of(f.path));
      if (it != join.header_by_stem.end()) {
        unordered.insert(it->second->unordered_names.begin(),
                         it->second->unordered_names.end());
      }
    }
    check_unordered_iter(f, unordered, raw);
    check_members(f, join, raw);
    check_spec_field_parity(f, join, raw);
    check_seed_provenance(f, raw);
    check_float_unordered_reduce(f, join, raw);
  }

  if (opts.layers != nullptr) {
    for (const LayerFinding& lf :
         check_layering(pm, *opts.layers, result.errors)) {
      emit(raw, lf.file, lf.line, lf.rule.c_str(), lf.message);
    }
  }

  std::vector<Violation> kept;
  for (Violation& v : raw) {
    const auto mk_it = markers_by_file.find(v.file);
    const MarkerSet* mk = mk_it == markers_by_file.end() ? nullptr
                                                         : mk_it->second;
    bool drop = false;
    if (mk != nullptr) {
      drop = inline_allowed(*mk, v.line, v.rule) ||
             (v.rule == kSnapshotComplete &&
              line_marked(mk->snapshot_exempt, v.line)) ||
             (v.rule == "spec-field-parity" &&
              line_marked(mk->json_exempt, v.line));
    }
    if (drop || file_suppressed(suppressions, v)) {
      ++result.suppressed;
    } else {
      kept.push_back(std::move(v));
    }
  }

  std::sort(kept.begin(), kept.end(),
            [](const Violation& a, const Violation& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  result.violations = std::move(kept);
  std::sort(result.errors.begin(), result.errors.end());
  return result;
}

}  // namespace htpb::lint
