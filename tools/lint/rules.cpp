#include "lint/rules.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace htpb::lint {

namespace {

constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kNondetCall = "nondet-call";
constexpr const char* kPtrKey = "ptr-key-container";
constexpr const char* kUninitPod = "uninit-pod-member";
constexpr const char* kSnapshotComplete = "snapshot-complete";

const std::set<std::string>& fundamental_types() {
  // Fundamental + <cstdint> names, plus the repo's own trivially-copyable
  // aliases from common/types.hpp. A member of one of these types left
  // without an initializer in a snapshot-bearing class restores from
  // whatever the allocator handed out.
  static const std::set<std::string> t = {
      "bool",     "char",     "char8_t",   "char16_t", "char32_t",
      "wchar_t",  "short",    "int",       "long",     "unsigned",
      "signed",   "float",    "double",    "size_t",   "ptrdiff_t",
      "int8_t",   "int16_t",  "int32_t",   "int64_t",  "uint8_t",
      "uint16_t", "uint32_t", "uint64_t",  "intptr_t", "uintptr_t",
      "Cycle",    "NodeId",   "AppId",     "PacketId"};
  return t;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Inline markers of one file, pre-validated: a malformed marker is a
/// configuration error even when no finding would have consulted it.
struct InlineMarkers {
  std::map<int, std::set<std::string>> allows;  // line -> rule ids
  std::set<int> exempt_lines;                   // snapshot-exempt lines
};

InlineMarkers scan_markers(const FileModel& m,
                           std::vector<std::string>& errors) {
  InlineMarkers out;
  for (const auto& [line, text] : m.lexed.comments) {
    const std::string where = m.path + ":" + std::to_string(line);
    if (const std::size_t at = text.find("htpb-lint:");
        at != std::string::npos) {
      const std::string rest = trim(text.substr(at + 10));
      const bool ok = rest.rfind("allow(", 0) == 0;
      const std::size_t close = ok ? rest.find(')') : std::string::npos;
      if (!ok || close == std::string::npos) {
        errors.push_back(where + ": malformed htpb-lint marker; expected "
                                 "\"htpb-lint: allow(rule-id) reason\"");
        continue;
      }
      std::set<std::string> ids;
      std::stringstream list(rest.substr(6, close - 6));
      std::string id;
      while (std::getline(list, id, ',')) {
        id = trim(id);
        bool known = false;
        for (const RuleInfo& r : rules()) known |= id == r.id;
        if (!known) {
          errors.push_back(where + ": unknown rule id \"" + id +
                           "\" in htpb-lint: allow(...)");
        } else {
          ids.insert(id);
        }
      }
      if (trim(rest.substr(close + 1)).empty()) {
        errors.push_back(where +
                         ": htpb-lint: allow(...) requires a reason");
        continue;
      }
      if (!ids.empty()) out.allows[line] = std::move(ids);
    }
    if (const std::size_t at = text.find("snapshot-exempt:");
        at != std::string::npos) {
      if (trim(text.substr(at + 16)).empty()) {
        errors.push_back(where + ": snapshot-exempt requires a reason");
      } else {
        out.exempt_lines.insert(line);
      }
    }
  }
  return out;
}

bool inline_allowed(const InlineMarkers& mk, int line,
                    const std::string& rule) {
  for (const int l : {line, line - 1}) {
    const auto it = mk.allows.find(l);
    if (it != mk.allows.end() && it->second.count(rule)) return true;
  }
  return false;
}

bool member_exempt(const InlineMarkers& mk, int line) {
  return mk.exempt_lines.count(line) || mk.exempt_lines.count(line - 1);
}

bool file_suppressed(const std::vector<FileSuppression>& sups,
                     const Violation& v) {
  for (const FileSuppression& s : sups) {
    if (s.rule != v.rule) continue;
    if (s.path == v.file) return true;
    if (!s.path.empty() && s.path.back() == '/' &&
        v.file.rfind(s.path, 0) == 0) {
      return true;
    }
  }
  return false;
}

const char* rule_hint(const std::string& id) {
  for (const RuleInfo& r : rules()) {
    if (id == r.id) return r.hint;
  }
  return "";
}

void emit(std::vector<Violation>& out, const FileModel& m, int line,
          const char* rule, std::string message) {
  out.push_back(
      Violation{m.path, line, rule, std::move(message), rule_hint(rule)});
}

// ---------------------------------------------------------------------

void check_unordered_iter(const FileModel& m,
                          const std::set<std::string>& names,
                          std::vector<Violation>& out) {
  for (const RangeFor& rf : m.range_fors) {
    if (rf.target.empty() || !names.count(rf.target)) continue;
    emit(out, m, rf.line, kUnorderedIter,
         "range-for over unordered container '" + rf.target + "'");
  }
}

void check_nondet_calls(const FileModel& m, std::vector<Violation>& out) {
  const std::vector<Token>& ts = m.lexed.tokens;
  const auto prev_blocks = [&](std::size_t i) {
    // Member access means some other API's method that merely shares the
    // libc name (rng.random(), cache.lru_clock() via .clock()); a
    // non-std qualifier means the same for class-scoped names.
    if (i == 0) return false;
    const std::string& p = ts[i - 1].text;
    if (p == "." || p == "->") return true;
    if (p == "::") return !(i >= 2 && is_ident(ts[i - 2], "std"));
    return false;
  };
  static const std::set<std::string> rand_like = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "random"};
  static const std::set<std::string> time_like = {
      "time", "clock", "gettimeofday", "clock_gettime"};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent) continue;
    const std::string& id = ts[i].text;
    if (id == "random_device") {
      emit(out, m, ts[i].line, kNondetCall,
           "std::random_device is a nondeterministic source");
      continue;
    }
    const bool call = i + 1 < ts.size() && ts[i + 1].text == "(";
    if (!call) continue;
    // `now` is checked before the qualifier gate: it is ALWAYS
    // clock-qualified (steady_clock::now, clock_type::now, ...).
    if (id == "now" && i > 0 && ts[i - 1].text == "::") {
      const std::string qual =
          i >= 2 && ts[i - 2].kind == TokKind::kIdent ? ts[i - 2].text
                                                      : "clock";
      emit(out, m, ts[i].line, kNondetCall,
           "'" + qual + "::now()' reads wall-clock state");
      continue;
    }
    if (prev_blocks(i)) continue;
    if (rand_like.count(id)) {
      emit(out, m, ts[i].line, kNondetCall,
           "call to '" + id + "()' bypasses the seeded common::Rng");
    } else if (time_like.count(id)) {
      emit(out, m, ts[i].line, kNondetCall,
           "call to '" + id + "()' reads wall-clock state");
    }
  }
}

void check_ptr_keys(const FileModel& m, std::vector<Violation>& out) {
  static const std::set<std::string> ordered = {"map", "set", "multimap",
                                               "multiset"};
  const std::vector<Token>& ts = m.lexed.tokens;
  for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent || !ordered.count(ts[i].text) ||
        ts[i + 1].text != "<" || ts[i - 1].text != "::" ||
        !is_ident(ts[i - 2], "std")) {
      continue;
    }
    // Walk the first template argument; a trailing '*' means the keys
    // are pointers and the tree orders by allocation address.
    int depth = 0;
    std::string last;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      const std::string& t = ts[j].text;
      if (t == "<") {
        ++depth;
        continue;
      }
      if (t == ">") {
        if (--depth == 0) break;
        continue;
      }
      if (t == "," && depth == 1) break;
      if (depth >= 1) last = t;
    }
    if (last == "*") {
      emit(out, m, ts[i].line, kPtrKey,
           "std::" + ts[i].text + " keyed by a pointer type");
    }
  }
}

void check_members(const FileModel& m,
                   const std::map<std::string, std::set<std::string>>& bodies,
                   const std::map<std::string, std::set<std::string>>& inits,
                   const InlineMarkers& mk, LintResult& result,
                   std::vector<Violation>& out) {
  for (const ClassInfo& c : m.classes) {
    if (!c.declares_save && !c.declares_load) continue;
    const auto body_it = bodies.find(c.name);
    const bool have_impl =
        body_it != bodies.end() && !body_it->second.empty();
    const auto init_it = inits.find(c.name);
    for (const Member& mem : c.members) {
      // uninit-pod-member: trivial type, no initializer.
      std::vector<std::string> type;
      bool ref = false;
      for (const std::string& t : mem.type_tokens) {
        if (t == "&") ref = true;
        if (t == "std" || t == "::" || t == "const" || t == "volatile") {
          continue;
        }
        type.push_back(t);
      }
      const bool ptr = !type.empty() && type.back() == "*";
      bool pod = !type.empty() && !ref;
      for (const std::string& t : type) {
        if (t != "*" && !fundamental_types().count(t)) pod = false;
      }
      const bool ctor_inited =
          init_it != inits.end() && init_it->second.count(mem.name) > 0;
      if (!mem.has_init && !ctor_inited && !ref && (pod || ptr)) {
        emit(out, m, mem.line, kUninitPod,
             "member '" + mem.name + "' of snapshot class '" + c.name +
                 "' has no initializer");
      }

      // snapshot-complete: the member must be referenced by the class's
      // save_state/load_state bodies (wherever they live).
      if (!have_impl) continue;
      if (body_it->second.count(mem.name)) continue;
      if (member_exempt(mk, mem.line)) {
        ++result.suppressed;
        continue;
      }
      emit(out, m, mem.line, kSnapshotComplete,
           "member '" + mem.name + "' of snapshot class '" + c.name +
               "' is not referenced in save_state/load_state");
    }
  }
}

std::string stem_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

bool is_header(const std::string& path) {
  return path.size() >= 2 && (path.rfind(".hpp") == path.size() - 4 ||
                              path.rfind(".hh") == path.size() - 3 ||
                              path.rfind(".h") == path.size() - 2);
}

}  // namespace

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> r = {
      {kUnorderedIter,
       "range-for over std::unordered_map/unordered_set",
       "collect keys, sort, iterate the sorted list (see "
       "power/defense.cpp sorted_nodes) or use an ordered container"},
      {kNondetCall,
       "rand()/random_device/time()/clock()/::now() outside whitelisted "
       "timing code",
       "derive randomness from common::Rng seeded by the spec; route "
       "timing through a suppressed timing helper"},
      {kPtrKey,
       "std::map/std::set keyed by a pointer",
       "key by a stable id (NodeId, PacketId, index) instead of an "
       "allocation address"},
      {kUninitPod,
       "uninitialized fundamental-type member in a snapshot-bearing class",
       "give the member a default initializer so a restored object never "
       "carries garbage"},
      {kSnapshotComplete,
       "data member missing from save_state/load_state",
       "serialize the member, or mark the declaration "
       "\"// snapshot-exempt: <reason>\" if it is derived or transient"},
  };
  return r;
}

std::vector<FileSuppression> parse_suppression_file(
    const std::string& path, const std::string& body,
    std::vector<std::string>& errors) {
  std::vector<FileSuppression> out;
  std::stringstream ss(body);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::string t = trim(line);
    if (t.empty() || t[0] == '#') continue;
    std::stringstream fields(t);
    FileSuppression s;
    s.line = lineno;
    fields >> s.rule >> s.path;
    std::getline(fields, s.reason);
    s.reason = trim(s.reason);
    const std::string where = path + ":" + std::to_string(lineno);
    bool known = false;
    for (const RuleInfo& r : rules()) known |= s.rule == r.id;
    if (!known) {
      errors.push_back(where + ": unknown rule id \"" + s.rule + "\"");
      continue;
    }
    if (s.path.empty()) {
      errors.push_back(where + ": suppression needs a path");
      continue;
    }
    if (s.reason.empty()) {
      errors.push_back(where + ": suppression for " + s.rule + " on " +
                       s.path + " needs a reason");
      continue;
    }
    out.push_back(std::move(s));
  }
  return out;
}

LintResult run_lint(const std::vector<FileModel>& models,
                    const std::vector<FileSuppression>& suppressions) {
  LintResult result;
  result.files_scanned = static_cast<int>(models.size());

  // Cross-file joins: snapshot bodies by class name, and unordered
  // container names of each header stem (so X.cpp sees members X.hpp
  // declared).
  std::map<std::string, std::set<std::string>> bodies;
  std::map<std::string, std::set<std::string>> ctor_inits;
  std::map<std::string, const FileModel*> header_by_stem;
  for (const FileModel& m : models) {
    for (const auto& [cls, idents] : m.snapshot_body_idents) {
      bodies[cls].insert(idents.begin(), idents.end());
    }
    for (const auto& [cls, names] : m.ctor_inits) {
      ctor_inits[cls].insert(names.begin(), names.end());
    }
    for (const ClassInfo& c : m.classes) {
      bodies[c.name].insert(c.snapshot_idents.begin(),
                            c.snapshot_idents.end());
    }
    if (is_header(m.path)) header_by_stem[stem_of(m.path)] = &m;
  }

  std::vector<Violation> raw;
  for (const FileModel& m : models) {
    const InlineMarkers markers = scan_markers(m, result.errors);

    std::set<std::string> unordered = m.unordered_names;
    if (!is_header(m.path)) {
      const auto it = header_by_stem.find(stem_of(m.path));
      if (it != header_by_stem.end()) {
        unordered.insert(it->second->unordered_names.begin(),
                         it->second->unordered_names.end());
      }
    }

    std::vector<Violation> found;
    check_unordered_iter(m, unordered, found);
    check_nondet_calls(m, found);
    check_ptr_keys(m, found);
    check_members(m, bodies, ctor_inits, markers, result, found);

    for (Violation& v : found) {
      if (inline_allowed(markers, v.line, v.rule) ||
          file_suppressed(suppressions, v)) {
        ++result.suppressed;
      } else {
        raw.push_back(std::move(v));
      }
    }
  }

  std::sort(raw.begin(), raw.end(), [](const Violation& a, const Violation& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  result.violations = std::move(raw);
  std::sort(result.errors.begin(), result.errors.end());
  return result;
}

}  // namespace htpb::lint
