#include "lint/fix.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace htpb::lint {

namespace {

constexpr const char* kReason = "FIXME: justify (inserted by htpb_lint --fix)";

/// What to insert above one source line.
struct LineFix {
  std::set<std::string> allow_rules;
  bool snapshot_exempt = false;
  bool json_exempt = false;
};

std::string indent_of(const std::string& line) {
  const std::size_t at = line.find_first_not_of(" \t");
  return at == std::string::npos ? "" : line.substr(0, at);
}

}  // namespace

FixResult apply_fixes(const std::filesystem::path& root,
                      const std::vector<Violation>& violations) {
  FixResult result;

  std::map<std::string, std::map<int, LineFix>> by_file;
  for (const Violation& v : violations) {
    if (v.rule == "layer-violation" || v.rule == "layer-cycle") continue;
    LineFix& fix = by_file[v.file][v.line];
    if (v.rule == "snapshot-complete") {
      fix.snapshot_exempt = true;
    } else if (v.rule == "spec-field-parity") {
      fix.json_exempt = true;
    } else {
      fix.allow_rules.insert(v.rule);
    }
  }

  for (const auto& [file, fixes] : by_file) {
    const std::filesystem::path full = root / file;
    std::ifstream in(full, std::ios::binary);
    if (!in.good()) {
      result.errors.push_back("--fix: cannot read " + file);
      continue;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(std::move(line));
    in.close();

    int inserted = 0;
    // Descending line order keeps earlier insertions from shifting the
    // line numbers of later ones.
    for (auto it = fixes.rbegin(); it != fixes.rend(); ++it) {
      const int lineno = it->first;
      if (lineno < 1 || lineno > static_cast<int>(lines.size())) continue;
      const std::string indent = indent_of(lines[lineno - 1]);
      std::vector<std::string> inserts;
      if (!it->second.allow_rules.empty()) {
        std::string ids;
        for (const std::string& r : it->second.allow_rules) {
          if (!ids.empty()) ids += ", ";
          ids += r;
        }
        inserts.push_back(indent + "// htpb-lint: allow(" + ids + ") " +
                          kReason);
      }
      if (it->second.snapshot_exempt) {
        inserts.push_back(indent + "// snapshot-exempt: " + kReason);
      }
      if (it->second.json_exempt) {
        inserts.push_back(indent + "// json-exempt: " + kReason);
      }
      lines.insert(lines.begin() + (lineno - 1), inserts.begin(),
                   inserts.end());
      inserted += static_cast<int>(inserts.size());
    }
    if (inserted == 0) continue;

    std::ofstream outf(full, std::ios::binary | std::ios::trunc);
    if (!outf.good()) {
      result.errors.push_back("--fix: cannot write " + file);
      continue;
    }
    for (const std::string& l : lines) outf << l << '\n';
    result.insertions += inserted;
    ++result.files_changed;
  }
  return result;
}

}  // namespace htpb::lint
