// Structural model of one source file, extracted from the token stream.
// This is the "parser" half of htpb_lint: a brace/paren-tracking scan
// that recognizes exactly the shapes the determinism rules need --
// class bodies and their data members, serializer bodies (save_state/
// load_state and to_json/from_json, inline, out-of-class and the repo's
// `x_to_json(const X&)` / `X x_from_json(...)` free-function idiom),
// declarations of unordered containers, range-for statements, Rng
// construction sites and accumulation sites -- without a real C++ front
// end. Anything it cannot classify it skips; the failure mode is a
// missed finding, never a crash or a spurious parse error.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace htpb::lint {

struct Member {
  std::string name;
  int line = 0;
  /// Declaration tokens left of the member name (cv-qualifiers stripped).
  std::vector<std::string> type_tokens;
  bool has_init = false;
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<Member> members;
  bool declares_save = false;
  bool declares_load = false;
};

struct RangeFor {
  int line = 0;
  /// Final identifier of the range expression when it is a plain
  /// identifier / member-access chain ("m", "this->m_", "obj.m_");
  /// empty when the expression is anything more complex (a call, an
  /// index, a temporary), which the unordered-iteration rule ignores.
  std::string target;
};

/// An Rng / std::mt19937 construction with arguments. The seed-provenance
/// rule flags sites whose argument expression is not visibly derived from
/// a seed (no identifier containing "seed" or "rng" appears in it).
struct RngSite {
  int line = 0;
  bool seed_derived = false;
  std::string args;  // flattened argument text, for the message
};

/// An accumulation tied to container iteration: a `+=` inside a range-for
/// body, or std::accumulate/std::reduce over container.begin(). The
/// float-unordered-reduce rule fires when `target` names an unordered
/// container AND the accumulation is provably floating-point (integer
/// sums are order-insensitive): for `+=`, `acc` resolves to a
/// float/double-declared name; for accumulate/reduce, the init argument
/// is a floating literal (`float_evidence` -- accumulate over an int
/// init sums in int, which is deterministic in any order).
struct ReduceSite {
  int line = 0;
  std::string target;
  std::string op;   // "+=", "accumulate" or "reduce"
  std::string acc;  // accumulator ident for "+="; empty otherwise
  bool float_evidence = false;
};

/// Identifier sets of serializer implementations, keyed by class name.
/// "snapshot" merges save_state+load_state (completeness is checked over
/// the union); to_json/from_json stay separate so the parity rule can say
/// which side dropped the member.
struct SerializerBodies {
  std::map<std::string, std::set<std::string>> snapshot;
  std::map<std::string, std::set<std::string>> to_json;
  std::map<std::string, std::set<std::string>> from_json;
};

struct FileModel {
  std::string path;  // repo-relative, '/'-separated
  LexedFile lexed;
  std::vector<ClassInfo> classes;
  SerializerBodies bodies;
  /// Members initialized in a constructor mem-init-list, keyed by class
  /// name. The uninit-pod-member rule treats these as initialized.
  std::map<std::string, std::set<std::string>> ctor_inits;
  /// Names declared with an unordered container type in this file
  /// (members, locals, parameters; aliases resolved one level).
  std::set<std::string> unordered_names;
  std::vector<RangeFor> range_fors;
  std::vector<RngSite> rng_sites;
  std::vector<ReduceSite> reduce_sites;
};

/// Builds the model for one already-lexed file.
FileModel build_model(std::string path, LexedFile lexed);

}  // namespace htpb::lint
