// Structural model of one source file, extracted from the token stream.
// This is the "parser" half of htpb_lint: a brace/paren-tracking scan
// that recognizes exactly the shapes the determinism rules need --
// class bodies and their data members, save_state/load_state bodies
// (inline and out-of-class), declarations of unordered containers, and
// range-for statements -- without a real C++ front end. Anything it
// cannot classify it skips; the failure mode is a missed finding, never
// a crash or a spurious parse error.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace htpb::lint {

struct Member {
  std::string name;
  int line = 0;
  /// Declaration tokens left of the member name (cv-qualifiers stripped).
  std::vector<std::string> type_tokens;
  bool has_init = false;
};

struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<Member> members;
  bool declares_save = false;
  bool declares_load = false;
  /// Identifier tokens appearing inside inline save_state/load_state
  /// bodies (and anything they mention), for the completeness rule.
  std::set<std::string> snapshot_idents;
};

struct RangeFor {
  int line = 0;
  /// Final identifier of the range expression when it is a plain
  /// identifier / member-access chain ("m", "this->m_", "obj.m_");
  /// empty when the expression is anything more complex (a call, an
  /// index, a temporary), which the unordered-iteration rule ignores.
  std::string target;
};

struct FileModel {
  std::string path;  // repo-relative, '/'-separated
  LexedFile lexed;
  std::vector<ClassInfo> classes;
  /// Identifier idents inside out-of-class `X::save_state` /
  /// `X::load_state` definitions, keyed by class name X.
  std::map<std::string, std::set<std::string>> snapshot_body_idents;
  /// Members initialized in a constructor mem-init-list, keyed by class
  /// name. The uninit-pod-member rule treats these as initialized.
  std::map<std::string, std::set<std::string>> ctor_inits;
  /// Names declared with an unordered container type in this file
  /// (members, locals, parameters; aliases resolved one level).
  std::set<std::string> unordered_names;
  std::vector<RangeFor> range_fors;
};

/// Builds the model for one already-lexed file.
FileModel build_model(std::string path, LexedFile lexed);

}  // namespace htpb::lint
