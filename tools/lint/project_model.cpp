#include "lint/project_model.hpp"

#include <sstream>

#include "common/json.hpp"
#include "lint/rules.hpp"

namespace htpb::lint {

namespace {

using json::Value;

/// Bumped whenever FileSummary's shape or any summarize() heuristic
/// changes; stale cache shards then miss on the key instead of feeding
/// the engine summaries produced by older extraction code.
constexpr int kFormatVersion = 1;

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------
// Marker scan (comment-level syntax; validated here so a malformed
// marker is a configuration error even when no finding consults it).

MarkerSet scan_markers(const std::string& path, const LexedFile& lexed) {
  MarkerSet out;
  for (const auto& [line, text] : lexed.comments) {
    const std::string where = path + ":" + std::to_string(line);
    if (const std::size_t at = text.find("htpb-lint:");
        at != std::string::npos) {
      const std::string rest = trim(text.substr(at + 10));
      const bool ok = rest.rfind("allow(", 0) == 0;
      const std::size_t close = ok ? rest.find(')') : std::string::npos;
      if (!ok || close == std::string::npos) {
        out.errors.push_back(where +
                             ": malformed htpb-lint marker; expected "
                             "\"htpb-lint: allow(rule-id) reason\"");
        continue;
      }
      std::set<std::string> ids;
      std::stringstream list(rest.substr(6, close - 6));
      std::string id;
      while (std::getline(list, id, ',')) {
        id = trim(id);
        bool known = false;
        for (const RuleInfo& r : rules()) known |= id == r.id;
        if (!known) {
          out.errors.push_back(where + ": unknown rule id \"" + id +
                               "\" in htpb-lint: allow(...)");
        } else {
          ids.insert(id);
        }
      }
      if (trim(rest.substr(close + 1)).empty()) {
        out.errors.push_back(where +
                             ": htpb-lint: allow(...) requires a reason");
        continue;
      }
      if (!ids.empty()) out.allows[line] = std::move(ids);
    }
    if (const std::size_t at = text.find("snapshot-exempt:");
        at != std::string::npos) {
      if (trim(text.substr(at + 16)).empty()) {
        out.errors.push_back(where + ": snapshot-exempt requires a reason");
      } else {
        out.snapshot_exempt.insert(line);
      }
    }
    if (const std::size_t at = text.find("json-exempt:");
        at != std::string::npos) {
      if (trim(text.substr(at + 12)).empty()) {
        out.errors.push_back(where + ": json-exempt requires a reason");
      } else {
        out.json_exempt.insert(line);
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------
// Token-level rules, precomputed into the summary.

void check_nondet_calls(const LexedFile& lexed,
                        std::vector<TokenFinding>& out) {
  const std::vector<Token>& ts = lexed.tokens;
  const auto prev_blocks = [&](std::size_t i) {
    // Member access means some other API's method that merely shares the
    // libc name (rng.random(), cache.lru_clock() via .clock()); a
    // non-std qualifier means the same for class-scoped names.
    if (i == 0) return false;
    const std::string& p = ts[i - 1].text;
    if (p == "." || p == "->") return true;
    if (p == "::") return !(i >= 2 && is_ident(ts[i - 2], "std"));
    return false;
  };
  static const std::set<std::string> rand_like = {
      "rand", "srand", "rand_r", "drand48", "lrand48", "random"};
  static const std::set<std::string> time_like = {
      "time", "clock", "gettimeofday", "clock_gettime"};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent) continue;
    const std::string& id = ts[i].text;
    if (id == "random_device") {
      out.push_back({ts[i].line, "nondet-call",
                     "std::random_device is a nondeterministic source"});
      continue;
    }
    const bool call = i + 1 < ts.size() && ts[i + 1].text == "(";
    if (!call) continue;
    // `now` is checked before the qualifier gate: it is ALWAYS
    // clock-qualified (steady_clock::now, clock_type::now, ...).
    if (id == "now" && i > 0 && ts[i - 1].text == "::") {
      const std::string qual =
          i >= 2 && ts[i - 2].kind == TokKind::kIdent ? ts[i - 2].text
                                                      : "clock";
      out.push_back({ts[i].line, "nondet-call",
                     "'" + qual + "::now()' reads wall-clock state"});
      continue;
    }
    if (prev_blocks(i)) continue;
    if (rand_like.count(id)) {
      out.push_back({ts[i].line, "nondet-call",
                     "call to '" + id +
                         "()' bypasses the seeded common::Rng"});
    } else if (time_like.count(id)) {
      out.push_back({ts[i].line, "nondet-call",
                     "call to '" + id + "()' reads wall-clock state"});
    }
  }
}

void check_ptr_keys(const LexedFile& lexed, std::vector<TokenFinding>& out) {
  static const std::set<std::string> ordered = {"map", "set", "multimap",
                                                "multiset"};
  const std::vector<Token>& ts = lexed.tokens;
  for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent || !ordered.count(ts[i].text) ||
        ts[i + 1].text != "<" || ts[i - 1].text != "::" ||
        !is_ident(ts[i - 2], "std")) {
      continue;
    }
    // Walk the first template argument; a trailing '*' means the keys
    // are pointers and the tree orders by allocation address.
    int depth = 0;
    std::string last;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      const std::string& t = ts[j].text;
      if (t == "<") {
        ++depth;
        continue;
      }
      if (t == ">") {
        if (--depth == 0) break;
        continue;
      }
      if (t == "," && depth == 1) break;
      if (depth >= 1) last = t;
    }
    if (last == "*") {
      out.push_back({ts[i].line, "ptr-key-container",
                     "std::" + ts[i].text + " keyed by a pointer type"});
    }
  }
}

/// Names declared with float/double type (members, locals, parameters).
std::set<std::string> collect_float_names(const std::vector<Token>& ts) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_ident(ts[i], "float") && !is_ident(ts[i], "double")) continue;
    std::size_t j = i + 1;
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" ||
            is_ident(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
      names.insert(ts[j].text);
    }
  }
  return names;
}

// ---------------------------------------------------------------------
// JSON round-trip helpers. Every container serializes in its natural
// (sorted) order, so the encoding is deterministic.

Value strings_to_json(const std::set<std::string>& s) {
  json::Array a;
  for (const std::string& v : s) a.push_back(Value(v));
  return Value(std::move(a));
}

std::set<std::string> strings_from_json(const Value& v) {
  std::set<std::string> out;
  for (const Value& e : v.as_array()) out.insert(e.as_string());
  return out;
}

Value ident_map_to_json(const std::map<std::string, std::set<std::string>>& m) {
  json::Object o;
  for (const auto& [k, v] : m) o[k] = strings_to_json(v);
  return Value(std::move(o));
}

std::map<std::string, std::set<std::string>> ident_map_from_json(
    const Value& v) {
  std::map<std::string, std::set<std::string>> out;
  for (const auto& [k, e] : v.as_object()) out[k] = strings_from_json(e);
  return out;
}

Value lines_to_json(const std::set<int>& s) {
  json::Array a;
  for (const int l : s) a.push_back(Value(l));
  return Value(std::move(a));
}

std::set<int> lines_from_json(const Value& v) {
  std::set<int> out;
  for (const Value& e : v.as_array()) out.insert(static_cast<int>(e.as_int()));
  return out;
}

/// find() that throws on a missing key, so a truncated shard degrades to
/// the catch-all cache miss instead of a null dereference.
const Value& req(const json::Object& o, const char* key) {
  const Value* v = o.find(key);
  if (v == nullptr) throw std::runtime_error(std::string("missing ") + key);
  return *v;
}

}  // namespace

FileSummary summarize(const std::string& path, const std::string& content) {
  FileModel m = build_model(path, lex(content));
  FileSummary s;
  s.path = path;
  s.includes = std::move(m.lexed.includes);
  s.classes = std::move(m.classes);
  s.bodies = std::move(m.bodies);
  s.ctor_inits = std::move(m.ctor_inits);
  s.unordered_names = std::move(m.unordered_names);
  s.float_names = collect_float_names(m.lexed.tokens);
  s.range_fors = std::move(m.range_fors);
  s.rng_sites = std::move(m.rng_sites);
  s.reduce_sites = std::move(m.reduce_sites);
  s.markers = scan_markers(path, m.lexed);
  check_nondet_calls(m.lexed, s.token_findings);
  check_ptr_keys(m.lexed, s.token_findings);
  return s;
}

std::string summary_to_json(const FileSummary& s) {
  json::Object root;
  root["version"] = Value(kFormatVersion);
  root["path"] = Value(s.path);

  json::Array includes;
  for (const Include& inc : s.includes) {
    json::Object o;
    o["line"] = Value(inc.line);
    o["target"] = Value(inc.target);
    includes.push_back(Value(std::move(o)));
  }
  root["includes"] = Value(std::move(includes));

  json::Array classes;
  for (const ClassInfo& c : s.classes) {
    json::Object o;
    o["name"] = Value(c.name);
    o["line"] = Value(c.line);
    o["declares_save"] = Value(c.declares_save);
    o["declares_load"] = Value(c.declares_load);
    json::Array members;
    for (const Member& mem : c.members) {
      json::Object mo;
      mo["name"] = Value(mem.name);
      mo["line"] = Value(mem.line);
      mo["has_init"] = Value(mem.has_init);
      json::Array type;
      for (const std::string& t : mem.type_tokens) type.push_back(Value(t));
      mo["type"] = Value(std::move(type));
      members.push_back(Value(std::move(mo)));
    }
    o["members"] = Value(std::move(members));
    classes.push_back(Value(std::move(o)));
  }
  root["classes"] = Value(std::move(classes));

  json::Object bodies;
  bodies["snapshot"] = ident_map_to_json(s.bodies.snapshot);
  bodies["to_json"] = ident_map_to_json(s.bodies.to_json);
  bodies["from_json"] = ident_map_to_json(s.bodies.from_json);
  root["bodies"] = Value(std::move(bodies));
  root["ctor_inits"] = ident_map_to_json(s.ctor_inits);
  root["unordered_names"] = strings_to_json(s.unordered_names);
  root["float_names"] = strings_to_json(s.float_names);

  json::Array fors;
  for (const RangeFor& rf : s.range_fors) {
    json::Object o;
    o["line"] = Value(rf.line);
    o["target"] = Value(rf.target);
    fors.push_back(Value(std::move(o)));
  }
  root["range_fors"] = Value(std::move(fors));

  json::Array rngs;
  for (const RngSite& r : s.rng_sites) {
    json::Object o;
    o["line"] = Value(r.line);
    o["seed_derived"] = Value(r.seed_derived);
    o["args"] = Value(r.args);
    rngs.push_back(Value(std::move(o)));
  }
  root["rng_sites"] = Value(std::move(rngs));

  json::Array reduces;
  for (const ReduceSite& r : s.reduce_sites) {
    json::Object o;
    o["line"] = Value(r.line);
    o["target"] = Value(r.target);
    o["op"] = Value(r.op);
    o["acc"] = Value(r.acc);
    o["float_evidence"] = Value(r.float_evidence);
    reduces.push_back(Value(std::move(o)));
  }
  root["reduce_sites"] = Value(std::move(reduces));

  json::Object markers;
  json::Object allows;
  for (const auto& [line, ids] : s.markers.allows) {
    allows[std::to_string(line)] = strings_to_json(ids);
  }
  markers["allows"] = Value(std::move(allows));
  markers["snapshot_exempt"] = lines_to_json(s.markers.snapshot_exempt);
  markers["json_exempt"] = lines_to_json(s.markers.json_exempt);
  json::Array merrs;
  for (const std::string& e : s.markers.errors) merrs.push_back(Value(e));
  markers["errors"] = Value(std::move(merrs));
  root["markers"] = Value(std::move(markers));

  json::Array findings;
  for (const TokenFinding& f : s.token_findings) {
    json::Object o;
    o["line"] = Value(f.line);
    o["rule"] = Value(f.rule);
    o["message"] = Value(f.message);
    findings.push_back(Value(std::move(o)));
  }
  root["token_findings"] = Value(std::move(findings));

  return json::dump(Value(std::move(root)), 0);
}

bool summary_from_json(const std::string& body, const std::string& path,
                       FileSummary& out) {
  try {
    const Value root = json::parse(body);
    const json::Object& o = root.as_object();
    const Value* version = o.find("version");
    const Value* p = o.find("path");
    if (version == nullptr || version->as_int() != kFormatVersion ||
        p == nullptr || p->as_string() != path) {
      return false;
    }
    FileSummary s;
    s.path = path;
    for (const Value& v : req(o, "includes").as_array()) {
      const json::Object& io = v.as_object();
      s.includes.push_back({static_cast<int>(req(io, "line").as_int()),
                            req(io, "target").as_string()});
    }
    for (const Value& v : req(o, "classes").as_array()) {
      const json::Object& co = v.as_object();
      ClassInfo c;
      c.name = req(co, "name").as_string();
      c.line = static_cast<int>(req(co, "line").as_int());
      c.declares_save = req(co, "declares_save").as_bool();
      c.declares_load = req(co, "declares_load").as_bool();
      for (const Value& mv : req(co, "members").as_array()) {
        const json::Object& mo = mv.as_object();
        Member mem;
        mem.name = req(mo, "name").as_string();
        mem.line = static_cast<int>(req(mo, "line").as_int());
        mem.has_init = req(mo, "has_init").as_bool();
        for (const Value& t : req(mo, "type").as_array()) {
          mem.type_tokens.push_back(t.as_string());
        }
        c.members.push_back(std::move(mem));
      }
      s.classes.push_back(std::move(c));
    }
    const json::Object& bodies = req(o, "bodies").as_object();
    s.bodies.snapshot = ident_map_from_json(req(bodies, "snapshot"));
    s.bodies.to_json = ident_map_from_json(req(bodies, "to_json"));
    s.bodies.from_json = ident_map_from_json(req(bodies, "from_json"));
    s.ctor_inits = ident_map_from_json(req(o, "ctor_inits"));
    s.unordered_names = strings_from_json(req(o, "unordered_names"));
    s.float_names = strings_from_json(req(o, "float_names"));
    for (const Value& v : req(o, "range_fors").as_array()) {
      const json::Object& fo = v.as_object();
      s.range_fors.push_back({static_cast<int>(req(fo, "line").as_int()),
                              req(fo, "target").as_string()});
    }
    for (const Value& v : req(o, "rng_sites").as_array()) {
      const json::Object& ro = v.as_object();
      RngSite site;
      site.line = static_cast<int>(req(ro, "line").as_int());
      site.seed_derived = req(ro, "seed_derived").as_bool();
      site.args = req(ro, "args").as_string();
      s.rng_sites.push_back(std::move(site));
    }
    for (const Value& v : req(o, "reduce_sites").as_array()) {
      const json::Object& ro = v.as_object();
      ReduceSite site;
      site.line = static_cast<int>(req(ro, "line").as_int());
      site.target = req(ro, "target").as_string();
      site.op = req(ro, "op").as_string();
      site.acc = req(ro, "acc").as_string();
      site.float_evidence = req(ro, "float_evidence").as_bool();
      s.reduce_sites.push_back(std::move(site));
    }
    const json::Object& markers = req(o, "markers").as_object();
    for (const auto& [line, ids] : req(markers, "allows").as_object()) {
      s.markers.allows[std::stoi(line)] = strings_from_json(ids);
    }
    s.markers.snapshot_exempt =
        lines_from_json(req(markers, "snapshot_exempt"));
    s.markers.json_exempt = lines_from_json(req(markers, "json_exempt"));
    for (const Value& e : req(markers, "errors").as_array()) {
      s.markers.errors.push_back(e.as_string());
    }
    for (const Value& v : req(o, "token_findings").as_array()) {
      const json::Object& fo = v.as_object();
      s.token_findings.push_back({static_cast<int>(req(fo, "line").as_int()),
                                  req(fo, "rule").as_string(),
                                  req(fo, "message").as_string()});
    }
    out = std::move(s);
    return true;
  } catch (const std::exception&) {
    return false;  // malformed shard == cache miss, never an error
  }
}

std::uint64_t summary_cache_key(const std::string& path,
                                const std::string& content) {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a 64 offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    h ^= 0xFF;  // field separator, outside any byte value mixed above
    h *= 0x100000001B3ULL;
  };
  mix("htpb-lint-summary-v" + std::to_string(kFormatVersion));
  mix(path);
  mix(content);
  return h;
}

}  // namespace htpb::lint
