#include "lint/graph.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

namespace htpb::lint {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash);
}

/// A project include edge, resolved to a scanned file.
struct Edge {
  std::string to;
  int line = 0;
  std::string target;  // the literal #include text, for messages
};

/// Resolves `target` against the scanned set the way the build's include
/// dirs do: relative to src/ and tools/ (the -I roots), to the repo root,
/// or to the including file's own directory. "" when nothing matches
/// (system or generated header) -- unresolved includes never lint.
std::string resolve_include(const std::string& from, const std::string& target,
                            const std::set<std::string>& scanned) {
  const std::string dir = dirname_of(from);
  const std::string candidates[] = {
      "src/" + target,
      "tools/" + target,
      target,
      dir.empty() ? target : dir + "/" + target,
  };
  for (const std::string& c : candidates) {
    if (scanned.count(c)) return c;
  }
  return "";
}

}  // namespace

LayerConfig parse_layers(const std::string& path, const std::string& body,
                         std::vector<std::string>& errors) {
  LayerConfig cfg;
  std::stringstream ss(body);
  std::string line;
  int lineno = 0;
  int layer = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    std::stringstream words(line);
    std::string module;
    while (words >> module) {
      if (!cfg.layer_of.emplace(module, layer).second) {
        errors.push_back(path + ":" + std::to_string(lineno) +
                         ": module \"" + module +
                         "\" appears in two layers");
      }
    }
    ++layer;
  }
  cfg.loaded = true;
  return cfg;
}

std::string module_of(const std::string& path) {
  const auto second_component = [&](std::size_t start) -> std::string {
    const std::size_t slash = path.find('/', start);
    return slash == std::string::npos ? "" : path.substr(start, slash - start);
  };
  if (path.rfind("src/", 0) == 0) return second_component(4);
  if (path.rfind("tools/lint/", 0) == 0) return "lint";
  if (path.rfind("tools/", 0) == 0) return "tools";
  if (path.rfind("bench/", 0) == 0) return "bench";
  if (path.rfind("tests/", 0) == 0) return "tests";
  if (path.rfind("examples/", 0) == 0) return "examples";
  return "";
}

std::vector<LayerFinding> check_layering(const ProjectModel& pm,
                                         const LayerConfig& layers,
                                         std::vector<std::string>& errors) {
  std::vector<LayerFinding> out;
  std::set<std::string> scanned;
  for (const FileSummary& f : pm.files) scanned.insert(f.path);

  // Resolved edges, per file, in include order (deterministic: summaries
  // arrive path-sorted and includes line-ordered).
  std::map<std::string, std::vector<Edge>> edges;
  std::set<std::string> unknown_reported;
  for (const FileSummary& f : pm.files) {
    for (const Include& inc : f.includes) {
      const std::string to = resolve_include(f.path, inc.target, scanned);
      if (to.empty() || to == f.path) continue;
      edges[f.path].push_back({to, inc.line, inc.target});

      const std::string from_mod = module_of(f.path);
      const std::string to_mod = module_of(to);
      if (from_mod.empty() || to_mod.empty() || from_mod == to_mod) continue;
      const auto from_it = layers.layer_of.find(from_mod);
      const auto to_it = layers.layer_of.find(to_mod);
      for (const auto& [mod, it] :
           {std::pair{from_mod, from_it}, std::pair{to_mod, to_it}}) {
        if (it == layers.layer_of.end() && unknown_reported.insert(mod).second) {
          errors.push_back("layers: module \"" + mod +
                           "\" is not assigned to any layer in the layers "
                           "file; the DAG must cover every module");
        }
      }
      if (from_it == layers.layer_of.end() ||
          to_it == layers.layer_of.end()) {
        continue;
      }
      if (to_it->second >= from_it->second) {
        out.push_back(
            {f.path, inc.line, "layer-violation",
             "#include \"" + inc.target + "\" reaches module '" + to_mod +
                 "' (layer " + std::to_string(to_it->second) +
                 ") from module '" + from_mod + "' (layer " +
                 std::to_string(from_it->second) +
                 "); includes may only point at strictly lower layers"});
      }
    }
  }

  // Include cycles, DFS with an explicit chain. Each cycle is reported
  // once, at the edge that closes it, with the full #include chain.
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::string> chain;
  std::set<std::string> cycles_reported;
  const std::function<void(const std::string&)> dfs =
      [&](const std::string& file) {
        color[file] = 1;
        chain.push_back(file);
        const auto it = edges.find(file);
        if (it != edges.end()) {
          for (const Edge& e : it->second) {
            const int c = color[e.to];
            if (c == 0) {
              dfs(e.to);
            } else if (c == 1) {
              // Back edge: the cycle is the chain suffix from e.to.
              const auto at =
                  std::find(chain.begin(), chain.end(), e.to);
              std::string msg = "include cycle: ";
              std::string key;
              for (auto p = at; p != chain.end(); ++p) {
                msg += *p + " -> ";
                key += *p + "|";
              }
              msg += e.to;
              if (cycles_reported.insert(key).second) {
                out.push_back({file, e.line, "layer-cycle", msg});
              }
            }
          }
        }
        chain.pop_back();
        color[file] = 2;
      };
  for (const FileSummary& f : pm.files) {
    if (color[f.path] == 0) dfs(f.path);
  }

  return out;
}

}  // namespace htpb::lint
