#include "lint/model.hpp"

#include <algorithm>
#include <cctype>

namespace htpb::lint {

namespace {

const std::set<std::string>& unordered_keywords() {
  static const std::set<std::string> kw = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kw;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::string suf(suffix);
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

/// Names declared with an unordered container type: members, locals,
/// parameters. One level of `using Alias = std::unordered_...` is
/// resolved so `Alias foo;` registers `foo` too.
std::set<std::string> collect_unordered_names(const std::vector<Token>& ts) {
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
    if (!is_ident(ts[i], "using") || ts[i + 1].kind != TokKind::kIdent ||
        ts[i + 2].text != "=") {
      continue;
    }
    for (std::size_t j = i + 3; j < ts.size() && ts[j].text != ";"; ++j) {
      if (ts[j].kind == TokKind::kIdent &&
          unordered_keywords().count(ts[j].text)) {
        aliases.insert(ts[i + 1].text);
        break;
      }
    }
  }

  std::set<std::string> names;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const bool container = ts[i].kind == TokKind::kIdent &&
                           (unordered_keywords().count(ts[i].text) ||
                            aliases.count(ts[i].text));
    if (!container) continue;
    std::size_t j = i + 1;
    if (j < ts.size() && ts[j].text == "<") {
      int depth = 0;
      for (; j < ts.size(); ++j) {
        if (ts[j].text == "<") ++depth;
        if (ts[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" ||
            is_ident(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
      names.insert(ts[j].text);
    }
  }
  return names;
}

/// Range-for geometry: the head span, the ':' position, and the body
/// extent (brace block or single statement) so accumulation inside the
/// loop can be attributed to the iterated container.
struct RangeForSpan {
  RangeFor rf;
  std::size_t body_begin = 0;  // token index just past ')' or '{'
  std::size_t body_end = 0;    // one past the last body token
};

std::vector<RangeForSpan> collect_range_for_spans(
    const std::vector<Token>& ts) {
  std::vector<RangeForSpan> out;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_ident(ts[i], "for") || ts[i + 1].text != "(") continue;
    // Find the range-for ':' at paren depth 1; a ';' there first means a
    // classic for loop. '[' tracking keeps structured bindings inert.
    std::size_t colon = 0;
    std::size_t close = 0;
    int paren = 0;
    int bracket = 0;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      const std::string& t = ts[j].text;
      if (t == "(") ++paren;
      if (t == ")" && --paren == 0) {
        close = j;
        break;
      }
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (paren == 1 && bracket == 0) {
        if (t == ";") break;
        if (t == ":" && colon == 0) colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    RangeForSpan span;
    span.rf.line = ts[i].line;
    // Accept only a plain identifier / member-access chain; anything
    // else (calls, indexing) is not an iteration over the container
    // object itself.
    bool chain = true;
    std::string last_ident;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = ts[j];
      if (t.kind == TokKind::kIdent) {
        last_ident = t.text;
      } else if (t.text != "." && t.text != "->" && t.text != "::") {
        chain = false;
        break;
      }
    }
    if (chain && !last_ident.empty()) span.rf.target = last_ident;

    // Body extent: `{ ... }` block or the single statement up to ';'.
    std::size_t b = close + 1;
    if (b < ts.size() && ts[b].text == "{") {
      int depth = 0;
      std::size_t e = b;
      for (; e < ts.size(); ++e) {
        if (ts[e].text == "{") ++depth;
        if (ts[e].text == "}" && --depth == 0) break;
      }
      span.body_begin = b + 1;
      span.body_end = e;
    } else {
      std::size_t e = b;
      while (e < ts.size() && ts[e].text != ";") ++e;
      span.body_begin = b;
      span.body_end = e;
    }
    out.push_back(std::move(span));
  }
  return out;
}

/// Rng / mt19937 constructions with an argument list. Function
/// declarations are told apart from constructions by their parameter
/// lists: two adjacent identifier tokens ("uint64_t seed") never occur in
/// an expression.
std::vector<RngSite> collect_rng_sites(const std::vector<Token>& ts) {
  static const std::set<std::string> rng_types = {"Rng", "mt19937",
                                                  "mt19937_64"};
  std::vector<RngSite> out;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent || !rng_types.count(ts[i].text)) {
      continue;
    }
    if (i > 0) {
      const std::string& p = ts[i - 1].text;
      // Type in a declaration head we never treat as a construction:
      // `class Rng`, `explicit Rng(...)` (the ctor itself), `~Rng`,
      // `x.rng()`-style member access, `template <typename Rng>`.
      if (p == "class" || p == "struct" || p == "explicit" || p == "~" ||
          p == "." || p == "->" || p == "typename" || p == "<") {
        continue;
      }
    }
    std::size_t j = i + 1;
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) ++j;  // Rng name(...)
    if (j >= ts.size() || (ts[j].text != "(" && ts[j].text != "{")) continue;
    // `Rng f()` with empty parens is the most-vexing-parse ambiguity: a
    // function declaration, or a default construction whose seed is the
    // documented constant. Neither is a provenance finding.
    if (j + 1 < ts.size() &&
        (ts[j + 1].text == ")" || ts[j + 1].text == "}")) {
      continue;
    }
    const std::string open = ts[j].text;
    const std::string shut = open == "(" ? ")" : "}";
    int depth = 0;
    std::vector<const Token*> args;
    std::size_t k = j;
    for (; k < ts.size(); ++k) {
      if (ts[k].text == open) ++depth;
      if (ts[k].text == shut && --depth == 0) break;
      if (k > j) args.push_back(&ts[k]);
    }
    if (k >= ts.size()) continue;  // unbalanced; degrade to no finding

    // Adjacent identifiers => a parameter list => a function declaration.
    bool declaration = false;
    for (std::size_t a = 0; a + 1 < args.size(); ++a) {
      if (args[a]->kind == TokKind::kIdent &&
          args[a + 1]->kind == TokKind::kIdent) {
        declaration = true;
        break;
      }
    }
    if (declaration) continue;

    RngSite site;
    site.line = ts[i].line;
    for (const Token* a : args) {
      if (!site.args.empty()) site.args += ' ';
      site.args += a->text;
      if (a->kind != TokKind::kIdent) continue;
      std::string lower = a->text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower.find("seed") != std::string::npos ||
          lower.find("rng") != std::string::npos) {
        site.seed_derived = true;
      }
    }
    if (site.args.size() > 48) site.args = site.args.substr(0, 45) + "...";
    out.push_back(std::move(site));
  }
  return out;
}

std::vector<ReduceSite> collect_reduce_sites(
    const std::vector<Token>& ts, const std::vector<RangeForSpan>& fors) {
  std::set<std::tuple<int, std::string, std::string>> seen;
  std::vector<ReduceSite> out;
  const auto add = [&](ReduceSite site) {
    if (seen.emplace(site.line, site.target, site.op).second) {
      out.push_back(std::move(site));
    }
  };
  // `+=` inside a range-for body ("+" and "=" lex separately). Nested
  // loops attribute inner accumulations to the outer loop too, which is
  // correct: the outer iteration order still taints the sum. The
  // accumulator is the identifier just left of the '+' (the last link of
  // a member chain); a non-identifier target (arr[i] +=) stays empty and
  // the rule cannot prove it floating-point, so it stays silent.
  for (const RangeForSpan& span : fors) {
    if (span.rf.target.empty()) continue;
    for (std::size_t j = span.body_begin; j + 1 < span.body_end; ++j) {
      if (ts[j].text != "+" || ts[j + 1].text != "=") continue;
      ReduceSite site;
      site.line = ts[j].line;
      site.target = span.rf.target;
      site.op = "+=";
      if (j > span.body_begin && ts[j - 1].kind == TokKind::kIdent) {
        site.acc = ts[j - 1].text;
      }
      add(std::move(site));
    }
  }
  // std::accumulate / std::reduce over container.begin(). Floating-point
  // evidence: a float literal among the arguments (the init argument
  // fixes the accumulation type -- an int init sums in int, which is
  // order-insensitive).
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != TokKind::kIdent ||
        (ts[i].text != "accumulate" && ts[i].text != "reduce") ||
        ts[i + 1].text != "(") {
      continue;
    }
    // First argument of the form `X.begin(` / `X.cbegin(`.
    if (!(i + 4 < ts.size() && ts[i + 2].kind == TokKind::kIdent &&
          (ts[i + 3].text == "." || ts[i + 3].text == "->") &&
          (is_ident(ts[i + 4], "begin") || is_ident(ts[i + 4], "cbegin")))) {
      continue;
    }
    ReduceSite site;
    site.line = ts[i].line;
    site.target = ts[i + 2].text;
    site.op = ts[i].text;
    int depth = 0;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      if (ts[j].text == "(") ++depth;
      if (ts[j].text == ")" && --depth == 0) break;
      if (ts[j].kind == TokKind::kNumber) {
        const std::string& num = ts[j].text;
        const bool hex = num.rfind("0x", 0) == 0 || num.rfind("0X", 0) == 0;
        if (num.find('.') != std::string::npos ||
            (!hex && (num.find('f') != std::string::npos ||
                      num.find('F') != std::string::npos))) {
          site.float_evidence = true;
        }
      }
    }
    add(std::move(site));
  }
  return out;
}

// ---------------------------------------------------------------------
// Scope scan: classes, members, serializer-function bodies.

enum class Family { kSnapshot, kToJson, kFromJson };

struct Scope {
  enum Kind { kOther, kClass, kSink };
  Kind kind = kOther;
  int class_idx = -1;      // kClass: index into model.classes
  Family family = Family::kSnapshot;  // kSink
  std::string sink_class;             // kSink: class the body belongs to
};

bool stmt_has_fn_name(const std::vector<Token>& stmt, const char* name) {
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if (stmt[i + 1].text == "(" && is_ident(stmt[i], name)) return true;
  }
  return false;
}

/// True when `stmt` (a block head) is `... X::<fn> ( ...` for one of the
/// serializer names; sets `cls` to X and `family` to the matching family.
bool is_out_of_class_serializer_head(const std::vector<Token>& stmt,
                                     std::string& cls, Family& family) {
  for (std::size_t i = 2; i + 1 < stmt.size(); ++i) {
    if (stmt[i + 1].text != "(") continue;
    Family f;
    if (is_ident(stmt[i], "save_state") || is_ident(stmt[i], "load_state")) {
      f = Family::kSnapshot;
    } else if (is_ident(stmt[i], "to_json")) {
      f = Family::kToJson;
    } else if (is_ident(stmt[i], "from_json")) {
      f = Family::kFromJson;
    } else {
      continue;
    }
    if (stmt[i - 1].text == "::" && stmt[i - 2].kind == TokKind::kIdent) {
      cls = stmt[i - 2].text;
      family = f;
      return true;
    }
  }
  return false;
}

/// Class-type candidates the free-function serializer idiom should never
/// bind to: the JSON plumbing types and fundamental-ish names.
bool serializer_class_candidate(const std::string& name) {
  static const std::set<std::string> excluded = {
      "json",   "Value",  "Object", "Array", "ObjectReader", "string",
      "string_view", "void", "bool", "int",  "auto",         "std"};
  return !excluded.count(name) && !name.empty() &&
         std::isupper(static_cast<unsigned char>(name[0]));
}

/// Free-function serializer head: a function whose name ends in
/// "to_json" / "from_json". The subject class is recovered from the
/// signature: to_json takes `const X&`; from_json returns X or mutates an
/// `X&` out-parameter. Sets `cls`/`family`; false when no plausible class
/// is found (the body is then an ordinary block).
bool is_free_serializer_head(const std::vector<Token>& stmt, std::string& cls,
                             Family& family) {
  std::size_t fn = 0;
  bool found = false;
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if (stmt[i].kind != TokKind::kIdent || stmt[i + 1].text != "(") continue;
    if (ends_with(stmt[i].text, "to_json")) {
      family = Family::kToJson;
      fn = i;
      found = true;
      break;
    }
    if (ends_with(stmt[i].text, "from_json")) {
      family = Family::kFromJson;
      fn = i;
      found = true;
      break;
    }
  }
  if (!found) return false;
  if (fn >= 1 && stmt[fn - 1].text == "::") return false;  // qualified form

  // Return-type class for from_json: `SystemSpec system_from_json(...)`.
  if (family == Family::kFromJson && fn >= 1 &&
      stmt[fn - 1].kind == TokKind::kIdent &&
      serializer_class_candidate(stmt[fn - 1].text)) {
    cls = stmt[fn - 1].text;
    return true;
  }
  // Parameter class: first `[const] X &` whose X is a plausible class
  // (to_json's subject, or from_json's out-parameter).
  int paren = 0;
  std::string last_ident;
  for (std::size_t i = fn + 1; i < stmt.size(); ++i) {
    const Token& t = stmt[i];
    if (t.text == "(") ++paren;
    if (t.text == ")" && --paren == 0) break;
    if (t.kind == TokKind::kIdent && !is_ident(t, "const")) {
      last_ident = t.text;
    }
    if (t.text == "&" && serializer_class_candidate(last_ident)) {
      cls = last_ident;
      return true;
    }
    if (t.text == ",") last_ident.clear();
  }
  return false;
}

const std::set<std::string>& non_member_keywords() {
  static const std::set<std::string> kw = {
      "using",    "typedef", "friend",        "template", "static",
      "enum",     "class",   "struct",        "union",    "operator",
      "explicit", "virtual", "static_assert", "constexpr", "namespace"};
  return kw;
}

/// Parses one class-scope statement that ended in ';' as a data-member
/// declaration; returns false for everything that is not one.
bool parse_member(std::vector<Token> stmt, Member& out) {
  // Drop access-specifier prefixes that accumulated into the statement.
  while (stmt.size() >= 2 && stmt[1].text == ":" &&
         (is_ident(stmt[0], "public") || is_ident(stmt[0], "private") ||
          is_ident(stmt[0], "protected"))) {
    stmt.erase(stmt.begin(), stmt.begin() + 2);
  }
  while (!stmt.empty() &&
         (is_ident(stmt[0], "mutable") || is_ident(stmt[0], "inline"))) {
    stmt.erase(stmt.begin());
  }
  if (stmt.empty()) return false;
  for (const Token& t : stmt) {
    if (t.kind == TokKind::kIdent && non_member_keywords().count(t.text)) {
      return false;
    }
    if (t.text == "~") return false;  // destructor
  }

  // Truncate the initializer (everything from a top-level '='), THEN
  // decide function-vs-variable: parens inside an initializer or inside
  // template arguments must not read as a parameter list.
  int angle = 0;
  int paren = 0;
  std::size_t cut = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const std::string& t = stmt[i].text;
    if (t == "<") ++angle;
    if (t == ">" && angle > 0) --angle;
    if (t == "(") ++paren;
    if (t == ")") --paren;
    if (t == "=" && angle == 0 && paren == 0) {
      cut = i;
      break;
    }
  }
  const bool has_init = cut != stmt.size();
  stmt.resize(cut);

  angle = 0;
  for (const Token& t : stmt) {
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == "(" && angle == 0) return false;  // function declaration
  }

  // Strip array suffixes: `int a_[4];`.
  while (!stmt.empty() && stmt.back().text == "]") {
    int depth = 0;
    while (!stmt.empty()) {
      if (stmt.back().text == "]") ++depth;
      if (stmt.back().text == "[") --depth;
      stmt.pop_back();
      if (depth == 0) break;
    }
  }
  if (stmt.size() < 2 || stmt.back().kind != TokKind::kIdent) return false;

  out.name = stmt.back().text;
  out.line = stmt.back().line;
  out.has_init = has_init;
  out.type_tokens.clear();
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    out.type_tokens.push_back(stmt[i].text);
  }
  return true;
}

/// Class-head name: the identifier after the LAST `class`/`struct`
/// keyword (skips `template <class T>` parameters). Empty for anonymous
/// or non-class heads (enum class, unions, plain blocks).
std::string class_head_name(const std::vector<Token>& stmt) {
  for (const Token& t : stmt) {
    if (is_ident(t, "enum") || is_ident(t, "union")) return "";
  }
  std::string name;
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if ((is_ident(stmt[i], "class") || is_ident(stmt[i], "struct")) &&
        stmt[i + 1].kind == TokKind::kIdent) {
      name = stmt[i + 1].text;
    }
  }
  // A '(' at top level means this was a function head returning a
  // class type (`struct Foo f() {`), not a class definition.
  if (!name.empty()) {
    int angle = 0;
    for (const Token& t : stmt) {
      if (t.text == "<") ++angle;
      if (t.text == ">" && angle > 0) --angle;
      if (t.text == "(" && angle == 0) return "";
    }
  }
  return name;
}

/// Records members initialized by a constructor mem-init-list head
/// (`Foo(...) : a_(x), b_(y)`), in-class or out-of-class. Paren-style
/// initializers only: a brace initializer in the list already truncated
/// the head at its '{', so later entries are missed -- the rule only
/// loosens (treats a member as initialized), never tightens, on a miss.
void collect_ctor_inits(const std::vector<Token>& stmt,
                        const std::string& enclosing_class, FileModel& m) {
  // The ':' introducing the init list follows the parameter list's ')'.
  std::size_t colon = 0;
  int paren = 0;
  for (std::size_t i = 1; i < stmt.size(); ++i) {
    if (stmt[i].text == "(") ++paren;
    if (stmt[i].text == ")") --paren;
    if (stmt[i].text == ":" && paren == 0 &&
        (stmt[i - 1].text == ")" || is_ident(stmt[i - 1], "noexcept"))) {
      colon = i;
      break;
    }
  }
  if (colon == 0) return;

  std::string cls = enclosing_class;
  for (std::size_t i = 2; i < colon; ++i) {
    if (stmt[i - 1].text == "::" && stmt[i].kind == TokKind::kIdent &&
        i >= 2 && stmt[i - 2].kind == TokKind::kIdent &&
        stmt[i - 2].text == stmt[i].text && i + 1 < colon &&
        stmt[i + 1].text == "(") {
      cls = stmt[i].text;  // out-of-class `X::X(...)`
    }
  }
  if (cls.empty()) return;

  std::set<std::string>& sink = m.ctor_inits[cls];
  std::size_t i = colon + 1;
  while (i < stmt.size() && stmt[i].kind == TokKind::kIdent) {
    sink.insert(stmt[i].text);
    ++i;
    if (i < stmt.size() && stmt[i].text == "(") {
      int depth = 0;
      for (; i < stmt.size(); ++i) {
        if (stmt[i].text == "(") ++depth;
        if (stmt[i].text == ")" && --depth == 0) {
          ++i;
          break;
        }
      }
    }
    if (i < stmt.size() && stmt[i].text == ",") ++i;
  }
}

bool is_member_brace_init_head(const std::vector<Token>& stmt) {
  if (stmt.empty()) return false;
  std::vector<Token> head = stmt;
  if (head.back().text == "=") head.pop_back();
  if (head.empty() || head.back().kind != TokKind::kIdent) return false;
  Member ignored;
  return parse_member(head, ignored);
}

}  // namespace

FileModel build_model(std::string path, LexedFile lexed) {
  FileModel m;
  m.path = std::move(path);
  m.unordered_names = collect_unordered_names(lexed.tokens);
  const std::vector<RangeForSpan> spans =
      collect_range_for_spans(lexed.tokens);
  m.range_fors.reserve(spans.size());
  for (const RangeForSpan& s : spans) m.range_fors.push_back(s.rf);
  m.rng_sites = collect_rng_sites(lexed.tokens);
  m.reduce_sites = collect_reduce_sites(lexed.tokens, spans);

  const std::vector<Token>& ts = lexed.tokens;
  std::vector<Scope> stack{Scope{}};  // file scope
  std::vector<Token> stmt;

  const auto sink_of = [&m](Family family,
                            const std::string& cls) -> std::set<std::string>& {
    switch (family) {
      case Family::kToJson:
        return m.bodies.to_json[cls];
      case Family::kFromJson:
        return m.bodies.from_json[cls];
      case Family::kSnapshot:
      default:
        return m.bodies.snapshot[cls];
    }
  };

  const auto active_sink = [&]() -> std::set<std::string>* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Scope::kSink) {
        return &sink_of(it->family, it->sink_class);
      }
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (std::set<std::string>* sink = active_sink();
        sink != nullptr && t.kind == TokKind::kIdent) {
      sink->insert(t.text);
    }

    if (t.text == "{") {
      Scope s;
      Scope& parent = stack.back();
      collect_ctor_inits(
          stmt,
          parent.kind == Scope::kClass
              ? m.classes[static_cast<std::size_t>(parent.class_idx)].name
              : std::string(),
          m);
      std::string head_class = class_head_name(stmt);
      std::string impl_class;
      Family family = Family::kSnapshot;
      if (parent.kind == Scope::kSink) {
        // Nested block / lambda inside a serializer body: keep collecting.
        s = parent;
      } else if (!head_class.empty()) {
        s.kind = Scope::kClass;
        s.class_idx = static_cast<int>(m.classes.size());
        ClassInfo c;
        c.name = head_class;
        c.line = t.line;
        m.classes.push_back(std::move(c));
      } else if (is_out_of_class_serializer_head(stmt, impl_class, family)) {
        s.kind = Scope::kSink;
        s.family = family;
        s.sink_class = impl_class;
      } else if (parent.kind == Scope::kClass) {
        ClassInfo& c = m.classes[static_cast<std::size_t>(parent.class_idx)];
        const bool save = stmt_has_fn_name(stmt, "save_state");
        const bool load = stmt_has_fn_name(stmt, "load_state");
        if (save || load) {
          // Inline save_state/load_state definition.
          s.kind = Scope::kSink;
          s.family = Family::kSnapshot;
          s.sink_class = c.name;
          c.declares_save |= save;
          c.declares_load |= load;
        } else if (stmt_has_fn_name(stmt, "to_json") ||
                   stmt_has_fn_name(stmt, "from_json")) {
          // Inline to_json/from_json member definition.
          s.kind = Scope::kSink;
          s.family = stmt_has_fn_name(stmt, "to_json") ? Family::kToJson
                                                       : Family::kFromJson;
          s.sink_class = c.name;
        } else if (is_member_brace_init_head(stmt)) {
          // Default member initializer: `int x_{0};` -- record the member
          // now, treat the braces as an inert block.
          std::vector<Token> head = stmt;
          if (head.back().text == "=") head.pop_back();
          Member mem;
          if (parse_member(head, mem)) {
            mem.has_init = true;
            c.members.push_back(std::move(mem));
          }
        }
      } else if (is_free_serializer_head(stmt, impl_class, family)) {
        s.kind = Scope::kSink;
        s.family = family;
        s.sink_class = impl_class;
      }
      stack.push_back(s);
      stmt.clear();
      continue;
    }
    if (t.text == "}") {
      if (stack.size() > 1) stack.pop_back();
      stmt.clear();
      continue;
    }
    if (t.text == ";") {
      if (stack.back().kind == Scope::kClass) {
        ClassInfo& c =
            m.classes[static_cast<std::size_t>(stack.back().class_idx)];
        const bool save = stmt_has_fn_name(stmt, "save_state");
        const bool load = stmt_has_fn_name(stmt, "load_state");
        if (save || load) {
          c.declares_save |= save;
          c.declares_load |= load;
        } else if (!stmt_has_fn_name(stmt, "to_json") &&
                   !stmt_has_fn_name(stmt, "from_json")) {
          Member mem;
          if (parse_member(stmt, mem)) c.members.push_back(std::move(mem));
        }
      }
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }

  m.lexed = std::move(lexed);
  return m;
}

}  // namespace htpb::lint
