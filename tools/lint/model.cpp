#include "lint/model.hpp"

#include <algorithm>

namespace htpb::lint {

namespace {

const std::set<std::string>& unordered_keywords() {
  static const std::set<std::string> kw = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kw;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Names declared with an unordered container type: members, locals,
/// parameters. One level of `using Alias = std::unordered_...` is
/// resolved so `Alias foo;` registers `foo` too.
std::set<std::string> collect_unordered_names(const std::vector<Token>& ts) {
  std::set<std::string> aliases;
  for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
    if (!is_ident(ts[i], "using") || ts[i + 1].kind != TokKind::kIdent ||
        ts[i + 2].text != "=") {
      continue;
    }
    for (std::size_t j = i + 3; j < ts.size() && ts[j].text != ";"; ++j) {
      if (ts[j].kind == TokKind::kIdent &&
          unordered_keywords().count(ts[j].text)) {
        aliases.insert(ts[i + 1].text);
        break;
      }
    }
  }

  std::set<std::string> names;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const bool container = ts[i].kind == TokKind::kIdent &&
                           (unordered_keywords().count(ts[i].text) ||
                            aliases.count(ts[i].text));
    if (!container) continue;
    std::size_t j = i + 1;
    if (j < ts.size() && ts[j].text == "<") {
      int depth = 0;
      for (; j < ts.size(); ++j) {
        if (ts[j].text == "<") ++depth;
        if (ts[j].text == ">" && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < ts.size() &&
           (ts[j].text == "&" || ts[j].text == "*" ||
            is_ident(ts[j], "const"))) {
      ++j;
    }
    if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
      names.insert(ts[j].text);
    }
  }
  return names;
}

std::vector<RangeFor> collect_range_fors(const std::vector<Token>& ts) {
  std::vector<RangeFor> out;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (!is_ident(ts[i], "for") || ts[i + 1].text != "(") continue;
    // Find the range-for ':' at paren depth 1; a ';' there first means a
    // classic for loop. '[' tracking keeps structured bindings inert.
    std::size_t colon = 0;
    std::size_t close = 0;
    int paren = 0;
    int bracket = 0;
    for (std::size_t j = i + 1; j < ts.size(); ++j) {
      const std::string& t = ts[j].text;
      if (t == "(") ++paren;
      if (t == ")" && --paren == 0) {
        close = j;
        break;
      }
      if (t == "[") ++bracket;
      if (t == "]") --bracket;
      if (paren == 1 && bracket == 0) {
        if (t == ";") break;
        if (t == ":" && colon == 0) colon = j;
      }
    }
    if (colon == 0 || close == 0) continue;
    RangeFor rf;
    rf.line = ts[i].line;
    // Accept only a plain identifier / member-access chain; anything
    // else (calls, indexing) is not an iteration over the container
    // object itself.
    bool chain = true;
    std::string last_ident;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = ts[j];
      if (t.kind == TokKind::kIdent) {
        last_ident = t.text;
      } else if (t.text != "." && t.text != "->" && t.text != "::") {
        chain = false;
        break;
      }
    }
    if (chain && !last_ident.empty()) rf.target = last_ident;
    out.push_back(rf);
  }
  return out;
}

// ---------------------------------------------------------------------
// Scope scan: classes, members, snapshot-function bodies.

struct Scope {
  enum Kind { kOther, kClass, kSnapshotFn };
  Kind kind = kOther;
  int class_idx = -1;          // kClass: index into model.classes
  std::string snapshot_class;  // kSnapshotFn: class the body belongs to
};

bool stmt_has_snapshot_name(const std::vector<Token>& stmt, bool& save,
                            bool& load) {
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if (stmt[i + 1].text != "(") continue;
    if (is_ident(stmt[i], "save_state")) save = true;
    if (is_ident(stmt[i], "load_state")) load = true;
  }
  return save || load;
}

/// True when `stmt` (a block head) is `... X::save_state ( ...` /
/// `... X::load_state ( ...`; sets `cls` to X.
bool is_out_of_class_snapshot_head(const std::vector<Token>& stmt,
                                   std::string& cls) {
  for (std::size_t i = 2; i + 1 < stmt.size(); ++i) {
    if (stmt[i + 1].text != "(") continue;
    if (!is_ident(stmt[i], "save_state") && !is_ident(stmt[i], "load_state")) {
      continue;
    }
    if (stmt[i - 1].text == "::" && stmt[i - 2].kind == TokKind::kIdent) {
      cls = stmt[i - 2].text;
      return true;
    }
  }
  return false;
}

const std::set<std::string>& non_member_keywords() {
  static const std::set<std::string> kw = {
      "using",    "typedef", "friend",        "template", "static",
      "enum",     "class",   "struct",        "union",    "operator",
      "explicit", "virtual", "static_assert", "constexpr", "namespace"};
  return kw;
}

/// Parses one class-scope statement that ended in ';' as a data-member
/// declaration; returns false for everything that is not one.
bool parse_member(std::vector<Token> stmt, Member& out) {
  // Drop access-specifier prefixes that accumulated into the statement.
  while (stmt.size() >= 2 && stmt[1].text == ":" &&
         (is_ident(stmt[0], "public") || is_ident(stmt[0], "private") ||
          is_ident(stmt[0], "protected"))) {
    stmt.erase(stmt.begin(), stmt.begin() + 2);
  }
  while (!stmt.empty() &&
         (is_ident(stmt[0], "mutable") || is_ident(stmt[0], "inline"))) {
    stmt.erase(stmt.begin());
  }
  if (stmt.empty()) return false;
  for (const Token& t : stmt) {
    if (t.kind == TokKind::kIdent && non_member_keywords().count(t.text)) {
      return false;
    }
    if (t.text == "~") return false;  // destructor
  }

  // Truncate the initializer (everything from a top-level '='), THEN
  // decide function-vs-variable: parens inside an initializer or inside
  // template arguments must not read as a parameter list.
  int angle = 0;
  int paren = 0;
  std::size_t cut = stmt.size();
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const std::string& t = stmt[i].text;
    if (t == "<") ++angle;
    if (t == ">" && angle > 0) --angle;
    if (t == "(") ++paren;
    if (t == ")") --paren;
    if (t == "=" && angle == 0 && paren == 0) {
      cut = i;
      break;
    }
  }
  const bool has_init = cut != stmt.size();
  stmt.resize(cut);

  angle = 0;
  for (const Token& t : stmt) {
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == "(" && angle == 0) return false;  // function declaration
  }

  // Strip array suffixes: `int a_[4];`.
  while (!stmt.empty() && stmt.back().text == "]") {
    int depth = 0;
    while (!stmt.empty()) {
      if (stmt.back().text == "]") ++depth;
      if (stmt.back().text == "[") --depth;
      stmt.pop_back();
      if (depth == 0) break;
    }
  }
  if (stmt.size() < 2 || stmt.back().kind != TokKind::kIdent) return false;

  out.name = stmt.back().text;
  out.line = stmt.back().line;
  out.has_init = has_init;
  out.type_tokens.clear();
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    out.type_tokens.push_back(stmt[i].text);
  }
  return true;
}

/// Class-head name: the identifier after the LAST `class`/`struct`
/// keyword (skips `template <class T>` parameters). Empty for anonymous
/// or non-class heads (enum class, unions, plain blocks).
std::string class_head_name(const std::vector<Token>& stmt) {
  for (const Token& t : stmt) {
    if (is_ident(t, "enum") || is_ident(t, "union")) return "";
  }
  std::string name;
  for (std::size_t i = 0; i + 1 < stmt.size(); ++i) {
    if ((is_ident(stmt[i], "class") || is_ident(stmt[i], "struct")) &&
        stmt[i + 1].kind == TokKind::kIdent) {
      name = stmt[i + 1].text;
    }
  }
  // A '(' at top level means this was a function head returning a
  // class type (`struct Foo f() {`), not a class definition.
  if (!name.empty()) {
    int angle = 0;
    for (const Token& t : stmt) {
      if (t.text == "<") ++angle;
      if (t.text == ">" && angle > 0) --angle;
      if (t.text == "(" && angle == 0) return "";
    }
  }
  return name;
}

/// Records members initialized by a constructor mem-init-list head
/// (`Foo(...) : a_(x), b_(y)`), in-class or out-of-class. Paren-style
/// initializers only: a brace initializer in the list already truncated
/// the head at its '{', so later entries are missed -- the rule only
/// loosens (treats a member as initialized), never tightens, on a miss.
void collect_ctor_inits(const std::vector<Token>& stmt,
                        const std::string& enclosing_class, FileModel& m) {
  // The ':' introducing the init list follows the parameter list's ')'.
  std::size_t colon = 0;
  int paren = 0;
  for (std::size_t i = 1; i < stmt.size(); ++i) {
    if (stmt[i].text == "(") ++paren;
    if (stmt[i].text == ")") --paren;
    if (stmt[i].text == ":" && paren == 0 &&
        (stmt[i - 1].text == ")" || is_ident(stmt[i - 1], "noexcept"))) {
      colon = i;
      break;
    }
  }
  if (colon == 0) return;

  std::string cls = enclosing_class;
  for (std::size_t i = 2; i < colon; ++i) {
    if (stmt[i - 1].text == "::" && stmt[i].kind == TokKind::kIdent &&
        i >= 2 && stmt[i - 2].kind == TokKind::kIdent &&
        stmt[i - 2].text == stmt[i].text && i + 1 < colon &&
        stmt[i + 1].text == "(") {
      cls = stmt[i].text;  // out-of-class `X::X(...)`
    }
  }
  if (cls.empty()) return;

  std::set<std::string>& sink = m.ctor_inits[cls];
  std::size_t i = colon + 1;
  while (i < stmt.size() && stmt[i].kind == TokKind::kIdent) {
    sink.insert(stmt[i].text);
    ++i;
    if (i < stmt.size() && stmt[i].text == "(") {
      int depth = 0;
      for (; i < stmt.size(); ++i) {
        if (stmt[i].text == "(") ++depth;
        if (stmt[i].text == ")" && --depth == 0) {
          ++i;
          break;
        }
      }
    }
    if (i < stmt.size() && stmt[i].text == ",") ++i;
  }
}

bool is_member_brace_init_head(const std::vector<Token>& stmt) {
  if (stmt.empty()) return false;
  std::vector<Token> head = stmt;
  if (head.back().text == "=") head.pop_back();
  if (head.empty() || head.back().kind != TokKind::kIdent) return false;
  Member ignored;
  return parse_member(head, ignored);
}

}  // namespace

FileModel build_model(std::string path, LexedFile lexed) {
  FileModel m;
  m.path = std::move(path);
  m.unordered_names = collect_unordered_names(lexed.tokens);
  m.range_fors = collect_range_fors(lexed.tokens);

  const std::vector<Token>& ts = lexed.tokens;
  std::vector<Scope> stack{Scope{}};  // file scope
  std::vector<Token> stmt;

  const auto snapshot_sink = [&]() -> std::set<std::string>* {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind != Scope::kSnapshotFn) continue;
      for (ClassInfo& c : m.classes) {
        if (c.name == it->snapshot_class) return &c.snapshot_idents;
      }
      return &m.snapshot_body_idents[it->snapshot_class];
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (std::set<std::string>* sink = snapshot_sink();
        sink != nullptr && t.kind == TokKind::kIdent) {
      sink->insert(t.text);
    }

    if (t.text == "{") {
      Scope s;
      Scope& parent = stack.back();
      collect_ctor_inits(
          stmt,
          parent.kind == Scope::kClass
              ? m.classes[static_cast<std::size_t>(parent.class_idx)].name
              : std::string(),
          m);
      std::string head_class = class_head_name(stmt);
      std::string impl_class;
      bool save = false;
      bool load = false;
      if (parent.kind == Scope::kSnapshotFn) {
        // Nested block / lambda inside a snapshot body: keep collecting.
        s = parent;
      } else if (!head_class.empty()) {
        s.kind = Scope::kClass;
        s.class_idx = static_cast<int>(m.classes.size());
        ClassInfo c;
        c.name = head_class;
        c.line = t.line;
        m.classes.push_back(std::move(c));
      } else if (is_out_of_class_snapshot_head(stmt, impl_class)) {
        s.kind = Scope::kSnapshotFn;
        s.snapshot_class = impl_class;
      } else if (parent.kind == Scope::kClass &&
                 stmt_has_snapshot_name(stmt, save, load)) {
        // Inline save_state/load_state definition.
        s.kind = Scope::kSnapshotFn;
        s.snapshot_class = m.classes[static_cast<std::size_t>(
                                         parent.class_idx)].name;
        ClassInfo& c = m.classes[static_cast<std::size_t>(parent.class_idx)];
        c.declares_save |= save;
        c.declares_load |= load;
      } else if (parent.kind == Scope::kClass &&
                 is_member_brace_init_head(stmt)) {
        // Default member initializer: `int x_{0};` -- record the member
        // now, treat the braces as an inert block.
        std::vector<Token> head = stmt;
        if (head.back().text == "=") head.pop_back();
        Member mem;
        if (parse_member(head, mem)) {
          mem.has_init = true;
          m.classes[static_cast<std::size_t>(parent.class_idx)]
              .members.push_back(std::move(mem));
        }
      }
      stack.push_back(s);
      stmt.clear();
      continue;
    }
    if (t.text == "}") {
      if (stack.size() > 1) stack.pop_back();
      stmt.clear();
      continue;
    }
    if (t.text == ";") {
      if (stack.back().kind == Scope::kClass) {
        ClassInfo& c =
            m.classes[static_cast<std::size_t>(stack.back().class_idx)];
        bool save = false;
        bool load = false;
        if (stmt_has_snapshot_name(stmt, save, load)) {
          c.declares_save |= save;
          c.declares_load |= load;
        } else {
          Member mem;
          if (parse_member(stmt, mem)) c.members.push_back(std::move(mem));
        }
      }
      stmt.clear();
      continue;
    }
    stmt.push_back(t);
  }

  m.lexed = std::move(lexed);
  return m;
}

}  // namespace htpb::lint
