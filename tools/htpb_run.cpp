// htpb_run -- the one driver for every declarative scenario.
//
//   htpb_run --list
//   htpb_run --scenario <name|file.json> [options]
//
// Options:
//   --scenario <arg>       registry name (see --list) or a ScenarioSpec
//                          JSON file (anything containing '/' or ending
//                          in .json is treated as a path)
//   --list                 print the registry (name, kind, title) and exit
//   --set key=value        override a spec field by dotted path, e.g.
//                          --set trojan.victim_scale=0.3
//                          --set axes.infection_targets=[0.2,0.8]
//                          (repeatable; applies after the --quick
//                          overlay, so explicit overrides always win)
//   --quick                apply the spec's quick overlay (CI-size sweeps)
//   --seed <n>             reseed the whole experiment (spec seed + the
//                          per-node workload streams)
//   --threads <n>          cap the ParallelSweepRunner pool
//   --json <path|->        write the result JSON to a file (or stdout);
//                          default: pretty-print to stdout
//   --dump-spec [path|-]   print the fully resolved spec JSON and exit
//                          (what would run, overrides and quick applied)
//   --record-trace <path>  simulate the scenario's canonical attacked
//                          campaign once and save its request trace
//   --replay-trace <path>  replay a saved trace through the scenario's
//                          detector grid -- no simulation at all
//   --checkpoint-dir <dir> persist campaign warmup checkpoints in <dir>
//                          (created if missing) and reuse matching ones
//                          from earlier runs; results are bit-identical
//                          with or without it -- the directory only
//                          converts repeated warmup simulation into a
//                          fingerprint-checked file load
//
// Results are bit-identical across thread counts and runs for a fixed
// (scenario, seed, quick) triple, except the "timing" object.
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/fault_inject.hpp"
#include "common/json.hpp"
#include "power/request_trace.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using htpb::json::Value;
using htpb::scenario::RunOptions;
using htpb::scenario::ScenarioSpec;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --list\n"
               "       %s --scenario <name|file.json> [--quick]"
               " [--set key=value ...]\n"
               "           [--seed N] [--threads N] [--json out|-]"
               " [--dump-spec [out|-]]\n"
               "           [--record-trace path | --replay-trace path]"
               " [--checkpoint-dir dir]\n",
               argv0, argv0);
  return 2;
}

bool looks_like_path(const std::string& arg) {
  return arg.find('/') != std::string::npos ||
         (arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0);
}

ScenarioSpec load_scenario(const std::string& arg) {
  if (looks_like_path(arg)) {
    return htpb::scenario::load_spec_file(arg);
  }
  return htpb::scenario::scenario_or_throw(arg);
}

void emit(const Value& v, const std::string& path) {
  if (path.empty() || path == "-") {
    std::printf("%s\n", htpb::json::dump(v, 2).c_str());
  } else {
    htpb::json::dump_file(v, path);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
}

/// Full-consumption base-10 parse; a typo'd seed must fail loudly, not
/// silently reseed the experiment with whatever strtoull salvages.
std::uint64_t parse_uint(const char* text, const char* argv0,
                         const char* flag) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got"
                 " \"%s\"\n", argv0, flag, text);
    std::exit(2);
  }
  return v;
}

int list_registry() {
  for (const ScenarioSpec& spec : htpb::scenario::registry()) {
    std::printf("%-20s %-26s %s\n", spec.name.c_str(),
                htpb::scenario::to_string(spec.kind), spec.title.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_arg;
  std::vector<std::string> sets;
  bool quick = false;
  bool list = false;
  bool dump_spec = false;
  std::string dump_spec_path;
  std::string json_path;
  std::string record_trace_path;
  std::string replay_trace_path;
  RunOptions opts;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--scenario") == 0) {
      scenario_arg = next_arg(i, arg);
    } else if (std::strcmp(arg, "--set") == 0) {
      sets.emplace_back(next_arg(i, arg));
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      opts.seed = parse_uint(next_arg(i, arg), argv[0], "--seed");
    } else if (std::strcmp(arg, "--threads") == 0) {
      opts.threads = static_cast<int>(
          parse_uint(next_arg(i, arg), argv[0], "--threads"));
    } else if (std::strcmp(arg, "--json") == 0) {
      json_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--dump-spec") == 0) {
      dump_spec = true;
      // Optional operand: consume it unless it is the next flag ("-"
      // alone means stdout, like --json).
      if (i + 1 < argc &&
          (argv[i + 1][0] != '-' || std::strcmp(argv[i + 1], "-") == 0)) {
        dump_spec_path = argv[++i];
      }
    } else if (std::strcmp(arg, "--record-trace") == 0) {
      record_trace_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--replay-trace") == 0) {
      replay_trace_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--checkpoint-dir") == 0) {
      opts.checkpoint_dir = next_arg(i, arg);
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      // Asked-for help goes to stdout and exits cleanly; only the
      // error paths use the stderr usage() helper.
      std::printf(
          "usage: %s --list\n"
          "       %s --scenario <name|file.json> [--quick]"
          " [--set key=value ...]\n"
          "           [--seed N] [--threads N] [--json out|-]"
          " [--dump-spec [out|-]]\n"
          "           [--record-trace path | --replay-trace path]"
          " [--checkpoint-dir dir]\n",
          argv[0], argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], arg);
      return usage(argv[0]);
    }
  }

  // Deterministic fault harness for the fleet tests: under
  // HTPB_FLEET_FAULT this may abort, hang, or corrupt json_path and exit.
  htpb::common::maybe_inject_fleet_fault(json_path);

  try {
    if (list) return list_registry();
    if (scenario_arg.empty()) return usage(argv[0]);

    if (!opts.checkpoint_dir.empty()) {
      // Create it up front so the first run can persist; load/save of
      // individual checkpoint files stays best-effort inside the
      // campaign layer (a corrupt or read-only dir degrades to plain
      // simulation, never to a wrong result).
      std::filesystem::create_directories(opts.checkpoint_dir);
    }

    ScenarioSpec spec = load_scenario(scenario_arg);
    if (!sets.empty()) {
      // Quick first, --set second: an explicit CLI override must win
      // over whatever the spec's quick overlay touches.
      if (quick) spec = spec.with_quick();
      Value spec_json = spec.to_json();
      for (const std::string& kv : sets) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::fprintf(stderr, "%s: --set expects key=value, got \"%s\"\n",
                       argv[0], kv.c_str());
          return 2;
        }
        htpb::scenario::apply_override(spec_json, kv.substr(0, eq),
                                       kv.substr(eq + 1));
      }
      spec = ScenarioSpec::from_json(spec_json);
      spec.validate();
    }
    opts.quick = quick;  // after with_quick() above this is a no-op merge

    if (dump_spec) {
      emit(htpb::scenario::resolve(spec, opts).to_json(), dump_spec_path);
      return 0;
    }
    if (!record_trace_path.empty()) {
      const htpb::power::RequestTrace trace =
          htpb::scenario::record_scenario_trace(spec, opts);
      trace.save(record_trace_path);
      std::fprintf(stderr,
                   "recorded %zu epochs (%d nodes) from scenario \"%s\""
                   " into %s\n",
                   trace.size(), trace.node_count, spec.name.c_str(),
                   record_trace_path.c_str());
      return 0;
    }
    if (!replay_trace_path.empty()) {
      const htpb::power::RequestTrace trace =
          htpb::power::RequestTrace::load(replay_trace_path);
      emit(htpb::scenario::replay_scenario_detectors(spec, trace, opts),
           json_path);
      return 0;
    }

    emit(htpb::scenario::run_scenario(spec, opts), json_path);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
