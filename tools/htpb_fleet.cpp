// htpb_fleet -- fault-tolerant campaign service over htpb_run workers.
//
//   htpb_fleet --scenario <name|file.json> --run-dir DIR [options]
//
// Expands the scenario's sweep axes into independent cells
// (scenario/cells.hpp), executes each cell as a crash-isolated htpb_run
// subprocess with per-cell timeout, retry-with-backoff and quarantine of
// corrupt artifacts (core/fleet_scheduler.hpp), and merges the cell
// results into the exact tree a single `htpb_run --json` of the same
// spec would emit -- bit-identical except "timing" and the added "fleet"
// section.
//
// The run directory is resumable: re-invoking the same command after a
// crash or kill skips cells whose status files say done (and whose
// artifacts still parse), re-running only the rest. A run dir holding a
// DIFFERENT spec (by fingerprint) is refused.
//
// Options:
//   --scenario <arg>      registry name or ScenarioSpec JSON file
//   --run-dir DIR         campaign state directory (created; resumable)
//   --quick               apply the spec's quick overlay
//   --set key=value       dotted-path override (repeatable, after quick)
//   --seed N              reseed the experiment
//   --threads N           ParallelSweepRunner cap inside each worker
//   --shards N            concurrent worker subprocesses (default 2)
//   --max-attempts N      tries per cell, first included (default 3)
//   --timeout S           per-cell wall clock; SIGTERM then SIGKILL (0 = off)
//   --term-grace S        TERM -> KILL escalation grace (default 2)
//   --backoff S           retry backoff base seconds (default 0.05)
//   --backoff-seed N      jitter stream seed (default 1)
//   --htpb-run PATH       worker binary (default: htpb_run next to this
//                         binary; env HTPB_RUN overrides the default)
//   --merged PATH         merged output (default <run-dir>/merged.json)
//   --no-resume           ignore existing statuses, re-run every cell
//   --list-cells          print the cell plan and exit
//
// Exit status: 0 = every cell done, 1 = failures (merged tree is still
// written, with the failures listed under "fleet"), 2 = usage.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "core/fleet_scheduler.hpp"
#include "core/parallel_sweep.hpp"
#include "core/run_dir.hpp"
#include "scenario/cells.hpp"
#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

using htpb::json::Value;
using htpb::scenario::RunOptions;
using htpb::scenario::ScenarioSpec;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario <name|file.json> --run-dir DIR\n"
               "           [--quick] [--set key=value ...] [--seed N]"
               " [--threads N]\n"
               "           [--shards N] [--max-attempts N] [--timeout S]"
               " [--term-grace S]\n"
               "           [--backoff S] [--backoff-seed N]"
               " [--htpb-run PATH]\n"
               "           [--merged PATH] [--no-resume] [--list-cells]\n",
               argv0);
  return 2;
}

bool looks_like_path(const std::string& arg) {
  return arg.find('/') != std::string::npos ||
         (arg.size() > 5 && arg.compare(arg.size() - 5, 5, ".json") == 0);
}

ScenarioSpec load_scenario(const std::string& arg) {
  if (looks_like_path(arg)) {
    return htpb::scenario::load_spec_file(arg);
  }
  return htpb::scenario::scenario_or_throw(arg);
}

std::uint64_t parse_uint(const char* text, const char* argv0,
                         const char* flag) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got"
                 " \"%s\"\n", argv0, flag, text);
    std::exit(2);
  }
  return v;
}

double parse_seconds(const char* text, const char* argv0, const char* flag) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || v < 0.0) {
    std::fprintf(stderr, "%s: %s expects seconds >= 0, got \"%s\"\n", argv0,
                 flag, text);
    std::exit(2);
  }
  return v;
}

/// The worker binary: --htpb-run flag, else $HTPB_RUN, else htpb_run in
/// this binary's own directory (the tools are built side by side).
std::string find_htpb_run(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("HTPB_RUN")) {
    if (*env != '\0') return env;
  }
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    const std::size_t slash = dir.rfind('/');
    if (slash != std::string::npos) {
      return dir.substr(0, slash) + "/htpb_run";
    }
  }
  return "htpb_run";  // last resort: PATH lookup in execvp
}

double now_seconds() {
  using clock = std::chrono::steady_clock;
  // htpb-lint: allow(nondet-call) campaign duration for progress logging only
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_arg;
  std::string run_dir_path;
  std::string htpb_run_flag;
  std::string merged_path;
  std::vector<std::string> sets;
  bool quick = false;
  bool list_cells = false;
  htpb::core::FleetConfig fleet;
  RunOptions opts;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scenario") == 0) {
      scenario_arg = next_arg(i, arg);
    } else if (std::strcmp(arg, "--run-dir") == 0) {
      run_dir_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--set") == 0) {
      sets.emplace_back(next_arg(i, arg));
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      opts.seed = parse_uint(next_arg(i, arg), argv[0], "--seed");
    } else if (std::strcmp(arg, "--threads") == 0) {
      opts.threads = static_cast<int>(
          parse_uint(next_arg(i, arg), argv[0], "--threads"));
    } else if (std::strcmp(arg, "--shards") == 0) {
      fleet.shards = static_cast<int>(
          parse_uint(next_arg(i, arg), argv[0], "--shards"));
    } else if (std::strcmp(arg, "--max-attempts") == 0) {
      fleet.max_attempts = static_cast<int>(
          parse_uint(next_arg(i, arg), argv[0], "--max-attempts"));
    } else if (std::strcmp(arg, "--timeout") == 0) {
      fleet.timeout_seconds =
          parse_seconds(next_arg(i, arg), argv[0], "--timeout");
    } else if (std::strcmp(arg, "--term-grace") == 0) {
      fleet.term_grace_seconds =
          parse_seconds(next_arg(i, arg), argv[0], "--term-grace");
    } else if (std::strcmp(arg, "--backoff") == 0) {
      fleet.backoff_base_seconds =
          parse_seconds(next_arg(i, arg), argv[0], "--backoff");
    } else if (std::strcmp(arg, "--backoff-seed") == 0) {
      fleet.backoff_seed = parse_uint(next_arg(i, arg), argv[0],
                                      "--backoff-seed");
    } else if (std::strcmp(arg, "--htpb-run") == 0) {
      htpb_run_flag = next_arg(i, arg);
    } else if (std::strcmp(arg, "--merged") == 0) {
      merged_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--no-resume") == 0) {
      fleet.resume = false;
    } else if (std::strcmp(arg, "--list-cells") == 0) {
      list_cells = true;
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], arg);
      return usage(argv[0]);
    }
  }

  try {
    if (scenario_arg.empty()) return usage(argv[0]);

    ScenarioSpec spec = load_scenario(scenario_arg);
    if (!sets.empty()) {
      // Same precedence as htpb_run: quick first, --set second.
      if (quick) spec = spec.with_quick();
      Value spec_json = spec.to_json();
      for (const std::string& kv : sets) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::fprintf(stderr, "%s: --set expects key=value, got \"%s\"\n",
                       argv[0], kv.c_str());
          return 2;
        }
        htpb::scenario::apply_override(spec_json, kv.substr(0, eq),
                                       kv.substr(eq + 1));
      }
      spec = ScenarioSpec::from_json(spec_json);
      spec.validate();
    }
    opts.quick = quick;

    const ScenarioSpec resolved = htpb::scenario::resolve(spec, opts);
    const std::vector<htpb::scenario::CellPlan> plan =
        htpb::scenario::expand_cells(resolved);

    if (list_cells) {
      for (const auto& cell : plan) {
        std::printf("%s\n", cell.id.c_str());
      }
      std::fprintf(stderr, "%zu cells for scenario \"%s\"\n", plan.size(),
                   resolved.name.c_str());
      return 0;
    }
    if (run_dir_path.empty()) return usage(argv[0]);

    const double t0 = now_seconds();
    const Value resolved_json = resolved.to_json();
    const std::string spec_fingerprint =
        htpb::core::fingerprint(htpb::json::dump(resolved_json, 2));

    std::vector<htpb::core::FleetCell> cells;
    cells.reserve(plan.size());
    for (const auto& cell : plan) {
      cells.push_back(htpb::core::FleetCell{
          cell.id, htpb::json::dump(cell.spec.to_json(), 2) + "\n"});
    }

    const std::string run_binary = find_htpb_run(htpb_run_flag);
    fleet.run_dir = run_dir_path;
    fleet.worker_command = [&run_binary](const std::string& spec_path,
                                         const std::string& result_path) {
      return std::vector<std::string>{run_binary, "--scenario", spec_path,
                                      "--json", result_path};
    };
    fleet.log = [](const std::string& line) {
      std::fprintf(stderr, "htpb_fleet: %s\n", line.c_str());
    };

    htpb::core::FleetScheduler scheduler(fleet);
    scheduler.run_dir().ensure_layout();
    htpb::json::dump_file(resolved_json, scheduler.run_dir().spec_path());
    const htpb::core::FleetReport report =
        scheduler.run(resolved.name, spec_fingerprint, cells);

    // Collect the cell envelopes in plan order; failed cells become null
    // and merge_cell_results leaves holes where their slices would be.
    std::vector<Value> results(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (report.cells[i].done) {
        results[i] = htpb::json::parse_file(
            scheduler.run_dir().result_path(plan[i].id));
      }
    }

    const int threads =
        resolved.threads > 0
            ? resolved.threads
            : htpb::core::ParallelSweepRunner::default_threads();
    Value merged = htpb::scenario::merge_cell_results(resolved, quick,
                                                      threads, results);

    htpb::json::Object fleet_out;
    fleet_out["cells"] = Value(static_cast<long long>(plan.size()));
    fleet_out["done"] = Value(report.done);
    fleet_out["resumed"] = Value(report.resumed);
    fleet_out["failed"] = Value(report.failed);
    fleet_out["attempts"] = Value(report.attempts);
    fleet_out["shards"] = Value(fleet.shards);
    fleet_out["max_attempts"] = Value(fleet.max_attempts);
    htpb::json::Array failures;
    for (const auto& outcome : report.cells) {
      if (outcome.done) continue;
      htpb::json::Object f;
      f["id"] = Value(outcome.id);
      f["reason"] = Value(outcome.fail_reason);
      f["attempts"] = Value(outcome.attempts);
      f["stderr"] = Value(outcome.last_error);
      failures.push_back(Value(std::move(f)));
    }
    fleet_out["failures"] = Value(std::move(failures));
    merged.as_object()["fleet"] = Value(std::move(fleet_out));

    htpb::json::Object timing;
    timing["seconds"] = Value(now_seconds() - t0);
    merged.as_object()["timing"] = Value(std::move(timing));

    const std::string out_path =
        merged_path.empty() ? scheduler.run_dir().merged_path() : merged_path;
    htpb::json::dump_file(merged, out_path);

    std::fprintf(stderr,
                 "htpb_fleet: %d/%zu cells done (%d resumed, %d failed,"
                 " %d attempts); merged -> %s\n",
                 report.done, plan.size(), report.resumed, report.failed,
                 report.attempts, out_path.c_str());
    return report.failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
}
