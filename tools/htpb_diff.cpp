// htpb_diff -- structural comparison of scenario result trees.
//
//   htpb_diff A.json B.json [options]
//
// Compares two result documents -- two merged fleet trees, or a merged
// tree against a single `htpb_run --json` output -- member by member,
// reporting every divergence with its JSON path. Designed around the
// determinism contract: results are bit-identical across runs and thread
// counts except "timing", so the default ignore set is exactly the keys
// that legitimately differ between a fleet run and a single process
// ("timing", the fleet's own "fleet" section, and the reported "threads"
// count).
//
// Options:
//   --ignore KEY     also skip members named KEY, at any depth
//                    (repeatable; adds to the default set)
//   --rel-tol R      global relative tolerance for numeric leaves
//                    (default 0 = exact)
//   --abs-tol A      global absolute tolerance (default 0)
//   --tol KEY=R      per-metric relative tolerance: applies to numeric
//                    members named KEY (repeatable, wins over --rel-tol)
//   --json PATH|-    also write a machine-readable report
//   --max-print N    cap printed differences (default 20; the report and
//                    the exit status always reflect the full count)
//
// Exit status: 0 = identical under the tolerances, 1 = differences,
// 2 = usage or unreadable input.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using htpb::json::Value;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s A.json B.json [--ignore KEY ...] [--rel-tol R]\n"
               "           [--abs-tol A] [--tol KEY=R ...] [--json out|-]"
               " [--max-print N]\n",
               argv0);
  return 2;
}

struct Diff {
  std::string path;
  std::string kind;  // "type" | "value" | "missing" | "length"
  std::string a;
  std::string b;
};

struct DiffConfig {
  std::vector<std::string> ignore = {"timing", "fleet", "threads"};
  std::vector<std::pair<std::string, double>> key_tols;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
};

bool ignored(const DiffConfig& cfg, const std::string& key) {
  for (const std::string& k : cfg.ignore) {
    if (k == key) return true;
  }
  return false;
}

/// The tolerance for a leaf is keyed by its final member name
/// ("detection_rate", "q", ...), so one knob can loosen one metric
/// everywhere it appears in the tree.
double rel_tol_for(const DiffConfig& cfg, const std::string& key) {
  for (const auto& [k, tol] : cfg.key_tols) {
    if (k == key) return tol;
  }
  return cfg.rel_tol;
}

[[nodiscard]] std::string brief(const Value& v) {
  std::string text = htpb::json::dump(v, 0);
  if (text.size() > 80) {
    text.resize(77);
    text += "...";
  }
  return text;
}

void diff_values(const Value& a, const Value& b, const std::string& path,
                 const std::string& key, const DiffConfig& cfg,
                 std::vector<Diff>& out);

void diff_objects(const Value& a, const Value& b, const std::string& path,
                  const DiffConfig& cfg, std::vector<Diff>& out) {
  // A's member order first, then B-only members: deterministic output
  // regardless of which side grew the extra key.
  for (const auto& [key, av] : a.as_object()) {
    if (ignored(cfg, key)) continue;
    const std::string child = path.empty() ? key : path + "." + key;
    if (const Value* bv = b.as_object().find(key)) {
      diff_values(av, *bv, child, key, cfg, out);
    } else {
      out.push_back(Diff{child, "missing", brief(av), "(absent)"});
    }
  }
  for (const auto& [key, bv] : b.as_object()) {
    if (ignored(cfg, key) || a.as_object().contains(key)) continue;
    const std::string child = path.empty() ? key : path + "." + key;
    out.push_back(Diff{child, "missing", "(absent)", brief(bv)});
  }
}

void diff_values(const Value& a, const Value& b, const std::string& path,
                 const std::string& key, const DiffConfig& cfg,
                 std::vector<Diff>& out) {
  if (a.is_object() && b.is_object()) {
    diff_objects(a, b, path, cfg, out);
    return;
  }
  if (a.is_array() && b.is_array()) {
    const auto& aa = a.as_array();
    const auto& ba = b.as_array();
    if (aa.size() != ba.size()) {
      out.push_back(Diff{path, "length", std::to_string(aa.size()) + " elements",
                         std::to_string(ba.size()) + " elements"});
    }
    const std::size_t n = std::min(aa.size(), ba.size());
    for (std::size_t i = 0; i < n; ++i) {
      diff_values(aa[i], ba[i], path + "[" + std::to_string(i) + "]", key,
                  cfg, out);
    }
    return;
  }
  if (a.is_number() && b.is_number()) {
    const double av = a.as_double();
    const double bv = b.as_double();
    const double rel = rel_tol_for(cfg, key);
    const double scale = std::max(std::fabs(av), std::fabs(bv));
    if (std::fabs(av - bv) <= cfg.abs_tol + rel * scale) return;
    out.push_back(Diff{path, "value", brief(a), brief(b)});
    return;
  }
  if (a == b) return;
  const bool same_type =
      (a.is_bool() && b.is_bool()) || (a.is_string() && b.is_string()) ||
      (a.is_null() && b.is_null());
  out.push_back(Diff{path, same_type ? "value" : "type", brief(a), brief(b)});
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  DiffConfig cfg;
  std::string report_path;
  int max_print = 20;

  const auto next_arg = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs an argument\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--ignore") == 0) {
      cfg.ignore.emplace_back(next_arg(i, arg));
    } else if (std::strcmp(arg, "--rel-tol") == 0) {
      cfg.rel_tol = std::strtod(next_arg(i, arg), nullptr);
    } else if (std::strcmp(arg, "--abs-tol") == 0) {
      cfg.abs_tol = std::strtod(next_arg(i, arg), nullptr);
    } else if (std::strcmp(arg, "--tol") == 0) {
      const std::string kv = next_arg(i, arg);
      const std::size_t eq = kv.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "%s: --tol expects KEY=R, got \"%s\"\n", argv[0],
                     kv.c_str());
        return 2;
      }
      cfg.key_tols.emplace_back(kv.substr(0, eq),
                                std::strtod(kv.c_str() + eq + 1, nullptr));
    } else if (std::strcmp(arg, "--json") == 0) {
      report_path = next_arg(i, arg);
    } else if (std::strcmp(arg, "--max-print") == 0) {
      max_print = std::atoi(next_arg(i, arg));
    } else if (std::strcmp(arg, "--help") == 0 ||
               std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      std::fprintf(stderr, "%s: unknown argument \"%s\"\n", argv[0], arg);
      return usage(argv[0]);
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.size() != 2) return usage(argv[0]);

  Value a;
  Value b;
  try {
    a = htpb::json::parse_file(files[0]);
    b = htpb::json::parse_file(files[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  std::vector<Diff> diffs;
  diff_values(a, b, "", "", cfg, diffs);

  const int printed =
      std::min<int>(max_print, static_cast<int>(diffs.size()));
  for (int i = 0; i < printed; ++i) {
    std::printf("%s: %s\n  A: %s\n  B: %s\n", diffs[i].path.c_str(),
                diffs[i].kind.c_str(), diffs[i].a.c_str(),
                diffs[i].b.c_str());
  }
  if (static_cast<int>(diffs.size()) > printed) {
    std::printf("... and %zu more\n", diffs.size() - printed);
  }
  std::fprintf(stderr, "%s: %zu difference%s between %s and %s\n", argv[0],
               diffs.size(), diffs.size() == 1 ? "" : "s", files[0].c_str(),
               files[1].c_str());

  if (!report_path.empty()) {
    htpb::json::Object report;
    report["a"] = Value(files[0]);
    report["b"] = Value(files[1]);
    htpb::json::Array ignored_keys;
    for (const std::string& k : cfg.ignore) ignored_keys.push_back(Value(k));
    report["ignored"] = Value(std::move(ignored_keys));
    report["differences"] = Value(static_cast<long long>(diffs.size()));
    htpb::json::Array diff_array;
    for (const Diff& d : diffs) {
      htpb::json::Object o;
      o["path"] = Value(d.path);
      o["kind"] = Value(d.kind);
      o["a"] = Value(d.a);
      o["b"] = Value(d.b);
      diff_array.push_back(Value(std::move(o)));
    }
    report["diffs"] = Value(std::move(diff_array));
    if (report_path == "-") {
      std::printf("%s\n", htpb::json::dump(Value(std::move(report)), 2).c_str());
    } else {
      htpb::json::dump_file(Value(std::move(report)), report_path);
    }
  }

  return diffs.empty() ? 0 : 1;
}
